/**
 * @file
 * Integration tests: whole-machine runs across the paper's main
 * configuration axes, checking the qualitative relationships the paper
 * reports (which scheme wins, which direction each knob moves
 * throughput) and cross-cutting invariants.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/mix_runner.hh"
#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

MeasureOptions
fastOptions()
{
    MeasureOptions opts;
    // Long enough past the cold-start ramp that steady-state relations
    // hold; still a fraction of the bench harness defaults.
    opts.cyclesPerRun = 15000;
    opts.warmupCycles = 15000;
    opts.runs = 4;
    return opts;
}

TEST(Integration, MeasureAggregatesRuns)
{
    MeasureOptions opts = fastOptions();
    const DataPoint p = measure(presets::baseSmt(2), opts);
    EXPECT_EQ(p.stats.cycles, opts.runs * opts.cyclesPerRun);
    EXPECT_GT(p.ipc(), 0.5);
}

TEST(Integration, ParallelAndSerialMeasureAgree)
{
    MeasureOptions serial = fastOptions();
    serial.parallel = false;
    MeasureOptions parallel = fastOptions();
    parallel.parallel = true;
    const DataPoint a = measure(presets::baseSmt(2), serial);
    const DataPoint b = measure(presets::baseSmt(2), parallel);
    EXPECT_EQ(a.stats.committedInstructions,
              b.stats.committedInstructions);
    EXPECT_EQ(a.stats.issuedInstructions, b.stats.issuedInstructions);
}

TEST(Integration, ThroughputGrowsWithThreads)
{
    MeasureOptions opts = fastOptions();
    const double ipc1 = measure(presets::baseSmt(1), opts).ipc();
    const double ipc4 = measure(presets::baseSmt(4), opts).ipc();
    const double ipc8 = measure(presets::baseSmt(8), opts).ipc();
    EXPECT_GT(ipc4, ipc1 * 1.25);
    // Fig. 3: throughput peaks before 8 threads; the 8-thread point may
    // dip below the 4-thread one but must not collapse.
    EXPECT_GE(ipc8, ipc4 * 0.6);
    EXPECT_GT(ipc8, ipc1);
}

TEST(Integration, IcountCompetitiveWithRoundRobinAtEightThreads)
{
    // The paper reports ICOUNT clearly ahead of RR; on the synthetic
    // workload the bottleneck mix differs (see EXPERIMENTS.md), so we
    // assert ICOUNT is at least competitive and relieves queue pressure.
    MeasureOptions opts = fastOptions();
    SmtConfig rr = presets::baseSmt(8);
    presets::setFetchPartition(rr, 2, 8);
    SmtConfig icount = presets::icount28(8);
    const DataPoint p_rr = measure(rr, opts);
    const DataPoint p_ic = measure(icount, opts);
    EXPECT_GT(p_ic.ipc(), p_rr.ipc() * 0.9);
}

TEST(Integration, CachePressureGrowsWithThreads)
{
    MeasureOptions opts = fastOptions();
    const DataPoint p1 = measure(presets::baseSmt(1), opts);
    const DataPoint p8 = measure(presets::baseSmt(8), opts);
    EXPECT_GT(p8.stats.icache.missRate(), p1.stats.icache.missRate());
    EXPECT_GT(p8.stats.dcache.missRate(), p1.stats.dcache.missRate());
}

TEST(Integration, BranchPredictionDegradesWithThreads)
{
    MeasureOptions opts = fastOptions();
    const DataPoint p1 = measure(presets::baseSmt(1), opts);
    const DataPoint p8 = measure(presets::baseSmt(8), opts);
    EXPECT_GT(p8.stats.branchMispredictRate(),
              p1.stats.branchMispredictRate() * 0.9);
}

TEST(Integration, SmtReducesRelativeWrongPathFetch)
{
    // Paper: wrong-path fetches fall from ~16-24% at 1 thread to ~7-9%
    // at 8 threads (fewer wasted slots because other threads fill them).
    MeasureOptions opts = fastOptions();
    const DataPoint p1 = measure(presets::baseSmt(1), opts);
    const DataPoint p8 = measure(presets::baseSmt(8), opts);
    EXPECT_LT(p8.stats.wrongPathFetchedFraction(),
              p1.stats.wrongPathFetchedFraction());
}

TEST(Integration, InfiniteFunctionalUnitsChangeLittle)
{
    MeasureOptions opts = fastOptions();
    SmtConfig base = presets::icount28(8);
    SmtConfig inf = base;
    inf.infiniteFunctionalUnits = true;
    const double base_ipc = measure(base, opts).ipc();
    const double inf_ipc = measure(inf, opts).ipc();
    EXPECT_GE(inf_ipc, base_ipc * 0.97);
    EXPECT_LT(inf_ipc, base_ipc * 1.30); // paper: ~+0.5%.
}

TEST(Integration, InfiniteCacheBandwidthChangesLittle)
{
    MeasureOptions opts = fastOptions();
    SmtConfig base = presets::icount28(8);
    SmtConfig inf = base;
    inf.infiniteCacheBandwidth = true;
    const double base_ipc = measure(base, opts).ipc();
    const double inf_ipc = measure(inf, opts).ipc();
    EXPECT_GE(inf_ipc, base_ipc * 0.97);
    EXPECT_LT(inf_ipc, base_ipc * 1.30); // paper: ~+3%.
}

TEST(Integration, SpeculationRestrictionsCostSingleThreadMore)
{
    MeasureOptions opts = fastOptions();
    SmtConfig full1 = presets::icount28(1);
    SmtConfig slow1 = full1;
    slow1.speculation = SpeculationMode::NoWrongPathIssue;
    const double cost1 =
        measure(full1, opts).ipc() / measure(slow1, opts).ipc();

    SmtConfig full8 = presets::icount28(8);
    SmtConfig slow8 = full8;
    slow8.speculation = SpeculationMode::NoWrongPathIssue;
    const double cost8 =
        measure(full8, opts).ipc() / measure(slow8, opts).ipc();

    // Paper: -38% at 1 thread vs -7% at 8 threads.
    EXPECT_GT(cost1, cost8);
    EXPECT_GT(cost1, 1.05);
}

TEST(Integration, NoPassBranchIsMilderThanNoWrongPathIssue)
{
    MeasureOptions opts = fastOptions();
    SmtConfig full = presets::icount28(8);
    SmtConfig no_pass = full;
    no_pass.speculation = SpeculationMode::NoPassBranch;
    SmtConfig no_wrong = full;
    no_wrong.speculation = SpeculationMode::NoWrongPathIssue;
    const double ipc_full = measure(full, opts).ipc();
    const double ipc_no_pass = measure(no_pass, opts).ipc();
    const double ipc_no_wrong = measure(no_wrong, opts).ipc();
    EXPECT_GE(ipc_full * 1.02, ipc_no_pass);
    EXPECT_GE(ipc_no_pass, ipc_no_wrong * 0.98);
}

TEST(Integration, IssuePoliciesAreCloseToOldestFirst)
{
    // Table 5: all four issue policies land within a whisker.
    MeasureOptions opts = fastOptions();
    SmtConfig base = presets::icount28(4);
    const double oldest = measure(base, opts).ipc();
    for (IssuePolicy p : {IssuePolicy::OptLast, IssuePolicy::SpecLast,
                          IssuePolicy::BranchFirst}) {
        SmtConfig cfg = base;
        cfg.issuePolicy = p;
        const double ipc = measure(cfg, opts).ipc();
        EXPECT_GT(ipc, oldest * 0.9) << toString(p);
        EXPECT_LT(ipc, oldest * 1.1) << toString(p);
    }
}

TEST(Integration, SweepHelperProducesOrderedResults)
{
    MeasureOptions opts = fastOptions();
    const ThreadSweep sweep = sweepThreads(
        "base", {1, 4},
        [](unsigned t) { return presets::baseSmt(t); }, opts);
    EXPECT_EQ(sweep.threads.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep.ipcAt(1), sweep.points[0].ipc());
    EXPECT_GT(sweep.peakIpc(), 0.0);
}

TEST(Integration, BigqBuffersWithoutSearchGrowth)
{
    MeasureOptions opts = fastOptions();
    SmtConfig bigq = presets::icount28(8);
    bigq.intQueueEntries = 64;
    bigq.fpQueueEntries = 64;
    bigq.iqSearchWindow = 32;
    const double base_ipc = measure(presets::icount28(8), opts).ipc();
    const double bigq_ipc = measure(bigq, opts).ipc();
    // Paper: BIGQ adds nothing (or slightly hurts) on top of ICOUNT.
    EXPECT_GT(bigq_ipc, base_ipc * 0.85);
    EXPECT_LT(bigq_ipc, base_ipc * 1.15);
}

TEST(Integration, ItagRunsAndStaysInBand)
{
    MeasureOptions opts = fastOptions();
    SmtConfig itag = presets::icount28(8);
    itag.itagEarlyLookup = true;
    const double base_ipc = measure(presets::icount28(8), opts).ipc();
    const double itag_ipc = measure(itag, opts).ipc();
    EXPECT_GT(itag_ipc, base_ipc * 0.85);
    EXPECT_LT(itag_ipc, base_ipc * 1.2);
}

TEST(Integration, FewerExcessRegistersNeverHelp)
{
    MeasureOptions opts = fastOptions();
    SmtConfig r100 = presets::icount28(8);
    SmtConfig r40 = r100;
    r40.excessRegisters = 40;
    EXPECT_GE(measure(r100, opts).ipc() * 1.03,
              measure(r40, opts).ipc());
}

} // namespace
} // namespace smt
