/**
 * @file
 * Tests for SmtConfig: the defaults must match the paper's Section 2
 * machine, the presets must match the evaluated configurations, and
 * validate() must reject inconsistent machines.
 */

#include <gtest/gtest.h>

#include "config/config.hh"

namespace smt
{
namespace
{

TEST(Config, DefaultsMatchPaperBaseMachine)
{
    SmtConfig cfg;
    // Section 2.1 hardware.
    EXPECT_EQ(cfg.fetchWidth, 8u);
    EXPECT_EQ(cfg.decodeWidth, 8u);
    EXPECT_EQ(cfg.intUnits, 6u);
    EXPECT_EQ(cfg.loadStoreUnits, 4u);
    EXPECT_EQ(cfg.fpUnits, 3u);
    EXPECT_EQ(cfg.intQueueEntries, 32u);
    EXPECT_EQ(cfg.fpQueueEntries, 32u);
    EXPECT_EQ(cfg.excessRegisters, 100u);
    EXPECT_TRUE(cfg.longRegisterPipeline);
    // Branch prediction (Section 2.1).
    EXPECT_EQ(cfg.btbEntries, 256u);
    EXPECT_EQ(cfg.btbAssoc, 4u);
    EXPECT_EQ(cfg.phtEntries, 2048u);
    EXPECT_EQ(cfg.rasEntries, 12u);
    EXPECT_TRUE(cfg.btbThreadIds);
    // Table 2 caches.
    EXPECT_EQ(cfg.icache.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.icache.assoc, 1u);
    EXPECT_EQ(cfg.icache.banks, 8u);
    EXPECT_EQ(cfg.dcache.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(cfg.l2.assoc, 4u);
    EXPECT_EQ(cfg.l3.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.l3.assoc, 1u);
    EXPECT_EQ(cfg.icache.latencyToNext, 6u);
    EXPECT_EQ(cfg.l2.latencyToNext, 12u);
    EXPECT_EQ(cfg.l3.latencyToNext, 62u);
    EXPECT_EQ(cfg.disambiguationBits, 10u);
}

TEST(Config, PhysRegsScaleWithThreads)
{
    SmtConfig cfg;
    cfg.numThreads = 1;
    EXPECT_EQ(cfg.physRegsPerFile(), 132u); // paper: 132 for 1 thread.
    cfg.numThreads = 8;
    EXPECT_EQ(cfg.physRegsPerFile(), 356u); // paper: 356 for 8 threads.
}

TEST(Config, TotalPhysRegistersOverrides)
{
    SmtConfig cfg;
    cfg.numThreads = 4;
    cfg.totalPhysRegisters = 200;
    EXPECT_EQ(cfg.physRegsPerFile(), 200u); // Figure 7 analysis.
}

TEST(Config, FetchSchemeName)
{
    SmtConfig cfg;
    EXPECT_EQ(cfg.fetchSchemeName(), "RR.1.8");
    cfg.fetchPolicy = FetchPolicy::ICount;
    presets::setFetchPartition(cfg, 2, 8);
    EXPECT_EQ(cfg.fetchSchemeName(), "ICOUNT.2.8");
}

TEST(Config, PresetBaseSmt)
{
    const SmtConfig cfg = presets::baseSmt(8);
    EXPECT_EQ(cfg.numThreads, 8u);
    EXPECT_EQ(cfg.fetchPolicy, FetchPolicy::RoundRobin);
    EXPECT_EQ(cfg.fetchThreads, 1u);
    EXPECT_EQ(cfg.fetchPerThread, 8u);
    EXPECT_TRUE(cfg.longRegisterPipeline);
    cfg.validate();
}

TEST(Config, PresetUnmodifiedSuperscalar)
{
    const SmtConfig cfg = presets::unmodifiedSuperscalar();
    EXPECT_EQ(cfg.numThreads, 1u);
    EXPECT_FALSE(cfg.longRegisterPipeline);
    cfg.validate();
}

TEST(Config, PresetICount28)
{
    const SmtConfig cfg = presets::icount28(4);
    EXPECT_EQ(cfg.fetchPolicy, FetchPolicy::ICount);
    EXPECT_EQ(cfg.fetchThreads, 2u);
    EXPECT_EQ(cfg.fetchPerThread, 8u);
    cfg.validate();
}

TEST(ConfigDeath, RejectsZeroThreads)
{
    SmtConfig cfg;
    cfg.numThreads = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "numThreads");
}

TEST(ConfigDeath, RejectsTooManyThreads)
{
    SmtConfig cfg;
    cfg.numThreads = 9;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "numThreads");
}

TEST(ConfigDeath, RejectsTinyRegisterFile)
{
    SmtConfig cfg;
    cfg.numThreads = 8;
    cfg.totalPhysRegisters = 256; // exactly the architectural registers.
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "physical registers");
}

TEST(ConfigDeath, RejectsSearchWindowBeyondQueue)
{
    SmtConfig cfg;
    cfg.iqSearchWindow = 64; // queues are 32.
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "iqSearchWindow");
}

TEST(ConfigDeath, RejectsMoreLoadStoreThanIntUnits)
{
    SmtConfig cfg;
    cfg.loadStoreUnits = 7;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "loadStoreUnits");
}

TEST(Config, PolicyNames)
{
    EXPECT_STREQ(toString(FetchPolicy::RoundRobin), "RR");
    EXPECT_STREQ(toString(FetchPolicy::BrCount), "BRCOUNT");
    EXPECT_STREQ(toString(FetchPolicy::MissCount), "MISSCOUNT");
    EXPECT_STREQ(toString(FetchPolicy::ICount), "ICOUNT");
    EXPECT_STREQ(toString(FetchPolicy::IQPosn), "IQPOSN");
    EXPECT_STREQ(toString(IssuePolicy::OldestFirst), "OLDEST_FIRST");
    EXPECT_STREQ(toString(IssuePolicy::OptLast), "OPT_LAST");
    EXPECT_STREQ(toString(IssuePolicy::SpecLast), "SPEC_LAST");
    EXPECT_STREQ(toString(IssuePolicy::BranchFirst), "BRANCH_FIRST");
}

} // namespace
} // namespace smt
