/**
 * @file
 * Torture tests for the event-loop server and its incremental request
 * parser: protocol abuse over live sockets (byte-at-a-time delivery,
 * arbitrary split points, pipelining, torn bodies, slow-loris drip),
 * accept/reject parity between RequestParser and the blocking
 * readRequest() across every chunking of a shared corpus, and a
 * concurrency soak whose client-side ledger must balance the server's
 * /v1/stats counters exactly.
 *
 * The split from test_net.cpp is deliberate: that file pins the wire
 * protocol's *happy* behavior (and must pass unchanged across server
 * rewrites); this one pins how the server behaves when the peer is
 * broken, malicious, or merely very slow.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hh"
#include "net/http_client.hh"
#include "net/http_server.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"
#include "sweep/digest.hh"
#include "sweep/json.hh"
#include "sweep/store_service.hh"

namespace smt
{
namespace
{

namespace fs = std::filesystem;

/** A scratch directory removed when the test ends. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path()
                 / ("smthostile_test_" + tag + "_"
                    + std::to_string(std::random_device{}())))
                    .string())
    {
        fs::create_directories(path_);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

net::HttpServer::Handler
echoHandler()
{
    return [](const net::HttpRequest &req) {
        net::HttpResponse resp;
        resp.headers.set("X-Method", req.method);
        resp.headers.set("X-Target", req.target);
        resp.body = req.body;
        return resp;
    };
}

/** Read one response off a raw socket (not via HttpClient). */
bool
readOneResponse(net::BufferedReader &in, net::HttpResponse &resp)
{
    return net::readResponse(in, resp);
}

// ---- Parser parity with the blocking reader --------------------------------

/** The blocking readRequest()'s verdict on raw bytes, delivered over a
 *  socketpair and terminated by EOF — exactly how the old server saw
 *  hostile input. */
bool
blockingAccepts(const std::string &bytes, net::HttpRequest *out = nullptr)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;
    net::Socket reader(fds[0]);
    {
        net::Socket writer(fds[1]);
        if (!writer.sendAll(bytes))
            return false;
    } // EOF for the reader.
    net::BufferedReader in(reader);
    net::HttpRequest req;
    if (!net::readRequest(in, req))
        return false;
    if (out != nullptr)
        *out = std::move(req);
    return true;
}

/** Feed `bytes` at a fixed chunk size; the terminal status. */
net::RequestParser::Status
feedChunked(net::RequestParser &parser, const std::string &bytes,
            std::size_t chunk)
{
    net::RequestParser::Status st = parser.status();
    for (std::size_t pos = 0; pos < bytes.size(); pos += chunk)
        st = parser.feed(bytes.data() + pos,
                         std::min(chunk, bytes.size() - pos));
    return st;
}

std::vector<std::string>
validCorpus()
{
    std::vector<std::string> corpus;
    corpus.push_back("GET /plain HTTP/1.1\r\nHost: x\r\n\r\n");
    corpus.push_back("GET / HTTP/1.0\r\n\r\n");
    // Header whitespace trimming on both sides of the colon.
    corpus.push_back("GET /ws HTTP/1.1\r\nX-Pad:   spaced out   \r\n"
                     "X-Tight:tight\r\n\r\n");
    // Bare-LF line endings are tolerated.
    corpus.push_back("GET /barelf HTTP/1.1\nHost: x\n\n");
    // Content-Length framing, including a zero-length body.
    corpus.push_back("PUT /cl HTTP/1.1\r\nContent-Length: 11\r\n\r\n"
                     "hello world");
    corpus.push_back("PUT /empty HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    // Chunked framing: multiple chunks, a chunk extension, trailers.
    corpus.push_back("POST /chunked HTTP/1.1\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n"
                     "4\r\nwiki\r\n5;ext=1\r\npedia\r\n0\r\n"
                     "X-Trailer: t\r\n\r\n");
    corpus.push_back("POST /chunked2 HTTP/1.1\r\n"
                     "transfer-encoding: chunked\r\n\r\n"
                     "0\r\n\r\n");
    // A body large enough to span many feed() chunks.
    std::string big = "PUT /big HTTP/1.1\r\nContent-Length: 70000\r\n\r\n";
    big += std::string(70000, 'b');
    corpus.push_back(std::move(big));
    return corpus;
}

std::vector<std::string>
hostileCorpus()
{
    std::vector<std::string> corpus;
    // Request-line abuse.
    corpus.push_back("\r\nGET / HTTP/1.1\r\n\r\n"); // empty first line.
    corpus.push_back("GARBAGE\r\n\r\n");            // one-word line.
    corpus.push_back("GET /missing-version\r\n\r\n");
    corpus.push_back("GET / FTP/1.0\r\n\r\n");
    corpus.push_back("GET / HTTP/2.0\r\n\r\n"); // not our major.
    corpus.push_back("GET  / HTTP/1.1\r\n\r\n"); // empty target.
    // Header abuse.
    corpus.push_back("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n");
    {
        std::string many = "GET /many HTTP/1.1\r\n";
        for (int i = 0; i < 600; ++i)
            many += "X-H" + std::to_string(i) + ": v\r\n";
        many += "\r\n";
        corpus.push_back(std::move(many));
    }
    // Content-Length abuse. strtoull negates "-5" into an enormous
    // value, so it trips the same size cap as the huge literal.
    corpus.push_back("PUT / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n");
    corpus.push_back("PUT / HTTP/1.1\r\nContent-Length: -5\r\n\r\n");
    corpus.push_back("PUT / HTTP/1.1\r\n"
                     "Content-Length: 999999999999\r\n\r\n");
    corpus.push_back("PUT / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n");
    // Chunked abuse.
    corpus.push_back("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                     "\r\nzz\r\ndata\r\n0\r\n\r\n");
    corpus.push_back("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                     "\r\nffffffffffffffff\r\n");
    corpus.push_back("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                     "\r\n4\r\nwikiXX0\r\n\r\n"); // data not CRLF-ended.
    return corpus;
}

TEST(RequestParser, EveryChunkingParsesTheValidCorpusIdentically)
{
    for (const std::string &bytes : validCorpus()) {
        net::HttpRequest expect;
        ASSERT_TRUE(blockingAccepts(bytes, &expect)) << bytes;

        for (const std::size_t chunk :
             {std::size_t(1), std::size_t(2), std::size_t(3),
              std::size_t(7), std::size_t(4096), bytes.size()}) {
            net::RequestParser parser;
            const net::RequestParser::Status st =
                feedChunked(parser, bytes, chunk);
            ASSERT_EQ(st, net::RequestParser::Status::Complete)
                << "chunk=" << chunk << " input:\n"
                << bytes.substr(0, 120);
            net::HttpRequest got = parser.takeRequest();
            EXPECT_EQ(got.method, expect.method);
            EXPECT_EQ(got.target, expect.target);
            EXPECT_EQ(got.body, expect.body);
            EXPECT_EQ(got.headers.items().size(),
                      expect.headers.items().size());
            for (const auto &[name, value] : expect.headers.items())
                EXPECT_EQ(got.headers.get(name), value) << name;
            // Nothing pipelined behind a lone message.
            EXPECT_EQ(parser.status(),
                      net::RequestParser::Status::NeedMore);
            EXPECT_EQ(parser.bufferedBytes(), 0u);
        }
    }
}

TEST(RequestParser, RejectsTheHostileCorpusLikeTheBlockingReader)
{
    for (const std::string &bytes : hostileCorpus()) {
        EXPECT_FALSE(blockingAccepts(bytes))
            << "blocking reader accepted:\n"
            << bytes.substr(0, 120);
        for (const std::size_t chunk :
             {std::size_t(1), std::size_t(13), bytes.size()}) {
            net::RequestParser parser;
            const net::RequestParser::Status st =
                feedChunked(parser, bytes, chunk);
            EXPECT_EQ(st, net::RequestParser::Status::Error)
                << "chunk=" << chunk << " input:\n"
                << bytes.substr(0, 120);
        }
    }
}

TEST(RequestParser, TornPrefixesReadAsNeedMoreNotError)
{
    // The three-way status is the parser's reason to exist: a torn
    // stream is NeedMore (the peer may still finish), only genuinely
    // malformed bytes are Error.
    const std::string bytes =
        "PUT /torn HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        net::RequestParser parser;
        const net::RequestParser::Status st =
            parser.feed(bytes.data(), cut);
        EXPECT_EQ(st, net::RequestParser::Status::NeedMore)
            << "cut=" << cut;
    }
}

TEST(RequestParser, UnterminatedLineBeyondTheCapIsError)
{
    // 70KB of request line with no newline in sight: hostile, not
    // merely slow — and rejected without waiting for termination.
    net::RequestParser parser;
    const std::string blob = "GET /" + std::string(70 * 1024, 'a');
    EXPECT_EQ(feedChunked(parser, blob, 4096),
              net::RequestParser::Status::Error);
}

TEST(RequestParser, ErrorIsSticky)
{
    net::RequestParser parser;
    const std::string bad = "GARBAGE\r\n\r\n";
    ASSERT_EQ(feedChunked(parser, bad, bad.size()),
              net::RequestParser::Status::Error);
    const std::string good = "GET / HTTP/1.1\r\n\r\n";
    EXPECT_EQ(parser.feed(good.data(), good.size()),
              net::RequestParser::Status::Error);
}

TEST(RequestParser, PipelinedMessagesComeOutInOrder)
{
    net::HttpRequest one;
    one.method = "PUT";
    one.target = "/first";
    one.body = "alpha";
    net::HttpRequest two;
    two.target = "/second";
    const std::string bytes =
        net::serialize(one) + net::serialize(two);

    net::RequestParser parser;
    ASSERT_EQ(feedChunked(parser, bytes, 1),
              net::RequestParser::Status::Complete);
    net::HttpRequest got = parser.takeRequest();
    EXPECT_EQ(got.target, "/first");
    EXPECT_EQ(got.body, "alpha");
    // takeRequest() resumed on the buffered tail.
    ASSERT_EQ(parser.status(), net::RequestParser::Status::Complete);
    got = parser.takeRequest();
    EXPECT_EQ(got.target, "/second");
    EXPECT_EQ(parser.status(), net::RequestParser::Status::NeedMore);
}

// ---- Live-socket torture ---------------------------------------------------

class HostileServerTest : public ::testing::Test
{
  protected:
    void
    startServer(double idle_timeout = 30.0,
                net::HttpServer::Handler handler = echoHandler())
    {
        server_.setMetrics(&metrics_);
        server_.setIdleTimeout(idle_timeout);
        std::string error;
        ASSERT_TRUE(server_.start("127.0.0.1", 0, std::move(handler),
                                  &error))
            << error;
    }

    std::int64_t
    counter(const std::string &name)
    {
        return metrics_.counter(name).value();
    }

    obs::Registry metrics_;
    net::HttpServer server_;
};

TEST_F(HostileServerTest, ByteAtATimeRequestStillParses)
{
    startServer();
    net::Socket sock = net::connectTcp("127.0.0.1", server_.port());
    ASSERT_TRUE(sock.valid());
    const std::string bytes =
        "PUT /dribble HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
    for (const char byte : bytes)
        ASSERT_TRUE(sock.sendAll(&byte, 1));
    net::BufferedReader in(sock);
    net::HttpResponse resp;
    ASSERT_TRUE(readOneResponse(in, resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.headers.get("X-Target"), "/dribble");
    EXPECT_EQ(resp.body, "hello");
}

TEST_F(HostileServerTest, ArbitrarySplitPointsDoNotConfuseTheServer)
{
    startServer();
    net::HttpRequest req;
    req.method = "POST";
    req.target = "/split";
    req.body = "0123456789abcdef0123456789abcdef";
    req.chunked = true; // chunked framing crosses splits too.
    const std::string bytes = net::serialize(req);

    // Cut the wire bytes at every single boundary, one fresh
    // connection per cut — headers, CRLFs, and chunk frames all get
    // split somewhere.
    for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
        net::Socket sock =
            net::connectTcp("127.0.0.1", server_.port());
        ASSERT_TRUE(sock.valid());
        ASSERT_TRUE(sock.sendAll(bytes.substr(0, cut)));
        ASSERT_TRUE(sock.sendAll(bytes.substr(cut)));
        net::BufferedReader in(sock);
        net::HttpResponse resp;
        ASSERT_TRUE(readOneResponse(in, resp)) << "cut=" << cut;
        EXPECT_EQ(resp.body, req.body) << "cut=" << cut;
    }
}

TEST_F(HostileServerTest, PipelinedRequestsAnswerInOrder)
{
    startServer();
    net::Socket sock = net::connectTcp("127.0.0.1", server_.port());
    ASSERT_TRUE(sock.valid());

    std::string wire;
    for (int i = 0; i < 3; ++i) {
        net::HttpRequest req;
        req.method = "PUT";
        req.target = "/pipelined/" + std::to_string(i);
        req.body = std::string(1 + i * 100, 'p');
        wire += net::serialize(req);
    }
    // One write carries all three; responses must come back complete,
    // in order, and correctly framed.
    ASSERT_TRUE(sock.sendAll(wire));
    net::BufferedReader in(sock);
    for (int i = 0; i < 3; ++i) {
        net::HttpResponse resp;
        ASSERT_TRUE(readOneResponse(in, resp)) << "response " << i;
        EXPECT_EQ(resp.headers.get("X-Target"),
                  "/pipelined/" + std::to_string(i));
        EXPECT_EQ(resp.body.size(), 1u + i * 100);
    }
}

TEST_F(HostileServerTest, TornMidBodyConnectionLeavesOthersServed)
{
    startServer();
    {
        net::Socket torn =
            net::connectTcp("127.0.0.1", server_.port());
        ASSERT_TRUE(torn.valid());
        ASSERT_TRUE(torn.sendAll(std::string(
            "PUT /torn HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-"
            "this-much")));
    } // dies mid-body.

    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.target = "/alive";
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->headers.get("X-Target"), "/alive");
}

TEST_F(HostileServerTest, SlowLorisIsReapedWithoutStallingOthers)
{
    startServer(/*idle_timeout=*/0.3);

    // The loris: drips one header byte at a time, never completing a
    // request. The idle deadline is armed when the connection starts
    // reading and is NOT extended by partial bytes, so this peer dies
    // at ~0.3s no matter how diligently it drips.
    std::atomic<bool> loris_cut{false};
    std::thread loris([&] {
        net::Socket sock =
            net::connectTcp("127.0.0.1", server_.port());
        if (!sock.valid())
            return;
        const std::string drip = "GET /never HTTP/1.1\r\nX-Slow: ";
        for (std::size_t i = 0; i < drip.size(); ++i) {
            if (!sock.sendAll(&drip[i], 1))
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40));
        }
        // The server's close surfaces as EOF here (or a send error
        // above, depending on timing).
        char byte = 0;
        loris_cut.store(sock.recvSome(&byte, 1) <= 0);
    });

    // Meanwhile normal clients must sail through, each completing far
    // faster than the reap deadline.
    net::HttpClient client("127.0.0.1", server_.port());
    const auto t0 = std::chrono::steady_clock::now();
    int served = 0;
    while (std::chrono::steady_clock::now() - t0
           < std::chrono::milliseconds(1200)) {
        net::HttpRequest req;
        req.target = "/healthy";
        auto resp = client.request(req);
        ASSERT_TRUE(resp.has_value()) << client.lastError();
        EXPECT_EQ(resp->status, 200);
        ++served;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    loris.join();

    EXPECT_TRUE(loris_cut.load());
    EXPECT_GE(served, 10);
    EXPECT_GE(counter("net.idle_reaped"), 1);
}

TEST_F(HostileServerTest, DispatchedHandlersOutliveTheIdleDeadline)
{
    // A handler slower than the idle timeout must still answer: a
    // Dispatching connection is the handler's problem, not the
    // reaper's.
    startServer(/*idle_timeout=*/0.2,
                [](const net::HttpRequest &) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(600));
                    net::HttpResponse resp;
                    resp.body = "slow but done";
                    return resp;
                });
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    req.target = "/slow";
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->body, "slow but done");
    EXPECT_EQ(counter("net.idle_reaped"), 0);
}

TEST_F(HostileServerTest, IdleKeepAliveConnectionsAreReaped)
{
    startServer(/*idle_timeout=*/0.2);
    net::HttpClient client("127.0.0.1", server_.port());
    net::HttpRequest req;
    ASSERT_TRUE(client.request(req).has_value());

    // Sit past the deadline; the server reaps the idle keep-alive
    // connection (the loop wakes exactly for it).
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    EXPECT_GE(counter("net.idle_reaped"), 1);

    // The client notices its cached connection is dead and retries
    // transparently — reaping is invisible to well-behaved callers.
    auto resp = client.request(req);
    ASSERT_TRUE(resp.has_value()) << client.lastError();
    EXPECT_EQ(resp->status, 200);
}

TEST_F(HostileServerTest, ConnectionCapRejectsTheOverflowPeer)
{
    server_.setMaxConnections(2);
    startServer();

    // Two residents, each with a completed exchange so the server has
    // definitely registered them.
    net::HttpClient a("127.0.0.1", server_.port());
    net::HttpClient b("127.0.0.1", server_.port());
    net::HttpRequest req;
    ASSERT_TRUE(a.request(req).has_value());
    ASSERT_TRUE(b.request(req).has_value());

    // The third peer connects (the kernel completes the handshake)
    // but the server accepts-and-closes: no response, just EOF — or
    // RST when the peer's bytes raced ahead of the server's close.
    net::Socket third = net::connectTcp("127.0.0.1", server_.port());
    ASSERT_TRUE(third.valid());
    third.sendAll(std::string("GET / HTTP/1.1\r\n\r\n"));
    char byte = 0;
    EXPECT_LE(third.recvSome(&byte, 1), 0);
    EXPECT_GE(counter("net.connections.rejected"), 1);
}

// ---- Concurrency soak: the ledger must balance -----------------------------

TEST(HostileSoak, ConcurrentMixedLoadBalancesTheStatsLedger)
{
    TempDir dir("soak");
    sweep::StoreService service(dir.path());
    net::HttpServer server;
    server.setMetrics(&service.metrics());
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1", 0,
                             [&](const net::HttpRequest &req) {
                                 return service.handle(req);
                             },
                             &error))
        << error;

    constexpr int kThreads = 16;
    constexpr int kOpsPerThread = 60;
    // 60 ops/thread = 15 claim ops (one in four); with 15 keys every
    // digest is contested by every thread.
    constexpr int kClaimKeys = 15;

    // Claim targets live in their own keyspace (no entries), so the
    // CAS on an empty marker decides exactly one winner per digest.
    std::vector<std::string> claim_digests;
    for (int i = 0; i < kClaimKeys; ++i)
        claim_digests.push_back(
            sweep::digestHex("soak-claim-" + std::to_string(i)));

    const auto stats_requests = [&](net::HttpClient &client)
        -> std::int64_t {
        net::HttpRequest req;
        req.target = "/v1/stats";
        auto resp = client.request(req);
        if (!resp || resp->status != 200)
            return -1;
        sweep::Json doc;
        if (!sweep::Json::parse(resp->body, doc))
            return -1;
        return doc.at("counters").at("net.requests").asInt();
    };

    net::HttpClient probe("127.0.0.1", server.port());
    const std::int64_t before = stats_requests(probe);
    ASSERT_GE(before, 0);

    std::atomic<std::uint64_t> total_ops{0};
    std::atomic<std::uint64_t> claim_wins{0};
    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            net::HttpClient client("127.0.0.1", server.port());
            sweep::Json marker = sweep::Json::object();
            marker.set("pid", sweep::Json(std::int64_t(t + 1)));
            marker.set("host", sweep::Json("soak"));

            for (int op = 0; op < kOpsPerThread; ++op) {
                const int kind = op % 4;
                const std::string digest = sweep::digestHex(
                    "soak-entry-" + std::to_string(op % 8));
                net::HttpRequest req;
                bool ok = false;
                if (kind == 0) {
                    // Digest-verified PUT.
                    sweep::Json entry = sweep::Json::object();
                    entry.set("digest", sweep::Json(digest));
                    sweep::Json stats = sweep::Json::object();
                    stats.set("t", sweep::Json(std::int64_t(t)));
                    entry.set("stats", std::move(stats));
                    req.method = "PUT";
                    req.target = "/v1/entries/" + digest;
                    req.body = entry.dump();
                    req.headers.set("X-Content-Digest",
                                    sweep::contentDigest(req.body));
                    auto resp = client.request(req);
                    ok = resp && resp->status == 204;
                } else if (kind == 1) {
                    req.target = "/v1/entries/" + digest;
                    auto resp = client.request(req);
                    // 404 races a writer legally; a 200 body must
                    // verify against its own declared digest field.
                    ok = resp
                         && (resp->status == 404
                             || (resp->status == 200
                                 && [&] {
                                        sweep::Json doc;
                                        return sweep::Json::parse(
                                                   resp->body, doc)
                                               && doc.at("digest")
                                                          .asString()
                                                      == digest;
                                    }()));
                } else if (kind == 2) {
                    req.method = "HEAD";
                    req.target = "/v1/entries/" + digest;
                    auto resp = client.request(req);
                    ok = resp
                         && (resp->status == 200
                             || resp->status == 404);
                } else {
                    // Claim CAS: every thread races for the same
                    // digest; exactly one 200 per digest total.
                    const std::string &target =
                        claim_digests[(op / 4) % kClaimKeys];
                    sweep::Json claim = sweep::Json::object();
                    claim.set("expect", sweep::Json(std::string()));
                    claim.set("marker",
                              sweep::Json::parseOrDie(marker.dump()));
                    req.method = "POST";
                    req.target = "/v1/claims/" + target;
                    req.body = claim.dump();
                    auto resp = client.request(req);
                    ok = resp
                         && (resp->status == 200
                             || resp->status == 409);
                    if (resp && resp->status == 200)
                        claim_wins.fetch_add(1);
                }
                total_ops.fetch_add(1);
                if (!ok)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const std::int64_t after = stats_requests(probe);
    ASSERT_GE(after, 0);
    server.stop();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(total_ops.load(),
              std::uint64_t(kThreads) * kOpsPerThread);
    // Exactly one winner per contested digest — no lost or duplicated
    // claims under 16-way contention.
    EXPECT_EQ(claim_wins.load(), std::uint64_t(kClaimKeys));
    // The ledger: the server saw precisely the client ops plus the
    // *before* stats probe (its counter lands inside the window; the
    // after-probe's lands outside, since counters record after the
    // handler returns). Any daylight here means requests were lost,
    // duplicated, or double-counted.
    EXPECT_EQ(after - before,
              std::int64_t(total_ops.load()) + 1);
}

} // namespace
} // namespace smt
