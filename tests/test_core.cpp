/**
 * @file
 * Unit tests for the core building blocks (rename map, instruction
 * queue, instruction pool) and targeted pipeline behaviours exercised
 * through small single-thread machines.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "core/inst_pool.hh"
#include "core/instruction_queue.hh"
#include "core/rename_map.hh"
#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

// ---- RegisterFileState -----------------------------------------------------

TEST(RenameMap, InitialMappingIdentityAndFreeCount)
{
    RegisterFileState rf(2, 100);
    EXPECT_EQ(rf.physRegs(), 100u);
    EXPECT_EQ(rf.freeCount(), 100u - 64u);
    EXPECT_EQ(rf.lookup(0, 0), 0);
    EXPECT_EQ(rf.lookup(1, 0), 32);
    // Architectural registers start ready.
    EXPECT_EQ(rf.readyAt(rf.lookup(0, 5)), 0u);
}

TEST(RenameMap, RenameAllocatesAndRemaps)
{
    RegisterFileState rf(1, 40);
    const auto [fresh, prev] = rf.rename(0, 3);
    EXPECT_EQ(prev, 3);
    EXPECT_GE(fresh, 32);
    EXPECT_EQ(rf.lookup(0, 3), fresh);
    EXPECT_EQ(rf.readyAt(fresh), kCycleNever); // not ready until issue.
    EXPECT_EQ(rf.freeCount(), 7u);
}

TEST(RenameMap, CommitFreesPreviousMapping)
{
    RegisterFileState rf(1, 40);
    const auto [fresh, prev] = rf.rename(0, 3);
    (void)fresh;
    rf.freeAtCommit(prev);
    EXPECT_EQ(rf.freeCount(), 8u); // net zero vs initial.
}

TEST(RenameMap, RollbackRestoresMapping)
{
    RegisterFileState rf(1, 40);
    const auto [fresh, prev] = rf.rename(0, 3);
    rf.rollback(0, 3, fresh, prev);
    EXPECT_EQ(rf.lookup(0, 3), prev);
    EXPECT_EQ(rf.freeCount(), 8u);
}

TEST(RenameMap, NestedRenameRollbackYoungestFirst)
{
    RegisterFileState rf(1, 40);
    const auto [f1, p1] = rf.rename(0, 3);
    const auto [f2, p2] = rf.rename(0, 3);
    EXPECT_EQ(p2, f1);
    rf.rollback(0, 3, f2, p2);
    rf.rollback(0, 3, f1, p1);
    EXPECT_EQ(rf.lookup(0, 3), 3);
    EXPECT_EQ(rf.freeCount(), 8u);
}

TEST(RenameMap, ExhaustionReportsNoFree)
{
    RegisterFileState rf(1, 34); // 2 renaming registers.
    EXPECT_TRUE(rf.hasFree());
    (void)rf.rename(0, 1);
    (void)rf.rename(0, 2);
    EXPECT_FALSE(rf.hasFree());
}

// ---- InstructionQueue -------------------------------------------------------

DynInst *
mkInst(InstPool &pool, StaticInst *si, InstSeqNum seq, ThreadID tid)
{
    DynInst *inst = pool.alloc();
    inst->si = si;
    inst->seq = seq;
    inst->tid = tid;
    inst->stage = InstStage::InQueue;
    return inst;
}

TEST(InstructionQueue, CapacityAndSearchWindow)
{
    InstPool pool;
    static StaticInst alu; // default IntAlu.
    InstructionQueue q(8, 4);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_FALSE(q.full());
        q.insert(mkInst(pool, &alu, i + 1, 0));
    }
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.searchLimit(), 4u); // only the first 4 searchable (BIGQ).
}

TEST(InstructionQueue, RemoveKeepsAgeOrder)
{
    InstPool pool;
    static StaticInst alu;
    InstructionQueue q(8, 8);
    DynInst *a = mkInst(pool, &alu, 1, 0);
    DynInst *b = mkInst(pool, &alu, 2, 0);
    DynInst *c = mkInst(pool, &alu, 3, 0);
    q.insert(a);
    q.insert(b);
    q.insert(c);
    q.remove(b);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(0), a);
    EXPECT_EQ(q.at(1), c);
}

TEST(InstructionQueue, RemoveIfBulk)
{
    InstPool pool;
    static StaticInst alu;
    InstructionQueue q(8, 8);
    for (unsigned i = 1; i <= 6; ++i)
        q.insert(mkInst(pool, &alu, i, i % 2));
    q.removeIf([](DynInst *i) { return i->tid == 0; });
    EXPECT_EQ(q.size(), 3u);
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q.at(i)->tid, 1);
}

TEST(InstructionQueue, OldestPositionsPerThread)
{
    InstPool pool;
    static StaticInst alu;
    InstructionQueue q(8, 8);
    q.insert(mkInst(pool, &alu, 1, 1));
    q.insert(mkInst(pool, &alu, 2, 0));
    q.insert(mkInst(pool, &alu, 3, 1));
    std::size_t pos[kMaxThreads];
    q.oldestPositions(pos);
    EXPECT_EQ(pos[1], 0u);
    EXPECT_EQ(pos[0], 1u);
    EXPECT_EQ(pos[2], q.size()); // no instructions: sentinel.
}

// ---- InstPool ----------------------------------------------------------------

TEST(InstPool, RecyclesInstances)
{
    InstPool pool;
    DynInst *a = pool.alloc();
    a->seq = 42;
    pool.release(a);
    DynInst *b = pool.alloc();
    EXPECT_EQ(b, a); // recycled.
    EXPECT_EQ(b->seq, 0u); // reset.
    EXPECT_EQ(pool.live(), 1u);
}

// ---- Whole-pipeline behaviours ----------------------------------------------

Simulator
makeSim(unsigned threads, Benchmark bench = Benchmark::Espresso,
        SmtConfig *out_cfg = nullptr)
{
    SmtConfig cfg = presets::baseSmt(threads);
    if (out_cfg != nullptr)
        *out_cfg = cfg;
    std::vector<Benchmark> mix(threads, bench);
    return Simulator(cfg, mix);
}

TEST(Pipeline, SingleThreadMakesForwardProgress)
{
    Simulator sim = makeSim(1);
    sim.run(20000);
    EXPECT_GT(sim.stats().committedInstructions, 5000u);
    EXPECT_GT(sim.stats().ipc(), 0.3);
    EXPECT_LE(sim.stats().ipc(), 8.0); // bounded by fetch width.
    sim.core().validateInvariants();
}

TEST(Pipeline, AllBenchmarksRunSingleThreaded)
{
    for (Benchmark b : allBenchmarks()) {
        SmtConfig cfg = presets::baseSmt(1);
        Simulator sim(cfg, {b});
        sim.run(8000);
        EXPECT_GT(sim.stats().committedInstructions, 1000u)
            << benchmarkName(b);
        sim.core().validateInvariants();
    }
}

TEST(Pipeline, DeterministicAcrossIdenticalRuns)
{
    Simulator a = makeSim(2);
    Simulator b = makeSim(2);
    a.run(15000);
    b.run(15000);
    EXPECT_EQ(a.stats().committedInstructions,
              b.stats().committedInstructions);
    EXPECT_EQ(a.stats().fetchedInstructions, b.stats().fetchedInstructions);
    EXPECT_EQ(a.stats().issuedInstructions, b.stats().issuedInstructions);
    EXPECT_EQ(a.stats().condBranchMispredicts,
              b.stats().condBranchMispredicts);
    EXPECT_EQ(a.stats().dcache.misses, b.stats().dcache.misses);
}

TEST(Pipeline, InvariantsHoldThroughoutExecution)
{
    Simulator sim = makeSim(4, Benchmark::Xlisp);
    for (int chunk = 0; chunk < 40; ++chunk) {
        sim.run(250);
        sim.core().validateInvariants();
    }
    EXPECT_GT(sim.stats().committedInstructions, 1000u);
}

TEST(Pipeline, WrongPathInstructionsAreFetchedAndSquashed)
{
    Simulator sim = makeSim(1, Benchmark::Xlisp); // branchy workload.
    sim.run(20000);
    const SimStats &s = sim.stats();
    EXPECT_GT(s.fetchedWrongPath, 0u);
    EXPECT_GT(s.condBranchMispredicts, 0u);
    // Wrong-path fetches must be a minority but visible (paper: ~16-24%
    // single-thread).
    EXPECT_LT(s.wrongPathFetchedFraction(), 0.5);
}

TEST(Pipeline, PerfectPredictionEliminatesWrongPath)
{
    SmtConfig cfg = presets::baseSmt(1);
    cfg.perfectBranchPrediction = true;
    Simulator sim(cfg, {Benchmark::Xlisp});
    sim.run(20000);
    EXPECT_EQ(sim.stats().fetchedWrongPath, 0u);
    EXPECT_EQ(sim.stats().condBranchMispredicts, 0u);
    EXPECT_EQ(sim.stats().misfetches, 0u);
}

TEST(Pipeline, PerfectPredictionBeatsRealPrediction)
{
    SmtConfig real = presets::baseSmt(1);
    Simulator sim_real(real, {Benchmark::Xlisp});
    sim_real.run(20000);

    SmtConfig perfect = presets::baseSmt(1);
    perfect.perfectBranchPrediction = true;
    Simulator sim_perfect(perfect, {Benchmark::Xlisp});
    sim_perfect.run(20000);

    // Perfect prediction removes all wrong-path work; throughput should
    // be at least on par (wrong-path fetches occasionally prefetch
    // usefully, so allow a whisker of inversion).
    EXPECT_GT(sim_perfect.stats().ipc(), sim_real.stats().ipc() * 0.93);
    EXPECT_EQ(sim_perfect.stats().fetchedWrongPath, 0u);
}

TEST(Pipeline, LongerSmtPipelineCostsALittleSingleThread)
{
    SmtConfig smt_pipe = presets::baseSmt(1);
    Simulator a(smt_pipe, {Benchmark::Doduc});
    a.run(30000);

    SmtConfig short_pipe = presets::unmodifiedSuperscalar();
    Simulator b(short_pipe, {Benchmark::Doduc});
    b.run(30000);

    // The superscalar (shorter pipeline) must be at least as fast, but
    // only slightly (paper: < 2%; allow a loose band).
    EXPECT_GE(b.stats().ipc() * 1.005, a.stats().ipc());
    EXPECT_LT(b.stats().ipc(), a.stats().ipc() * 1.2);
}

TEST(Pipeline, MoreThreadsRaiseThroughput)
{
    SmtConfig cfg1 = presets::baseSmt(1);
    Simulator one(cfg1, mixForRun(1, 0));
    one.run(20000);

    SmtConfig cfg4 = presets::baseSmt(4);
    Simulator four(cfg4, mixForRun(4, 0));
    four.run(20000);

    EXPECT_GT(four.stats().ipc(), one.stats().ipc() * 1.3);
}

TEST(Pipeline, OptimisticIssueSquashesOccur)
{
    Simulator sim = makeSim(2, Benchmark::Tomcatv); // memory bound.
    sim.run(20000);
    EXPECT_GT(sim.stats().optimisticSquashes, 0u);
}

TEST(Pipeline, StoresAndLoadsReachTheDataCache)
{
    Simulator sim = makeSim(1);
    sim.run(10000);
    EXPECT_GT(sim.stats().dcache.accesses, 1000u);
    EXPECT_GT(sim.stats().dcache.misses, 0u);
}

TEST(Pipeline, CommitNeverExceedsFetch)
{
    Simulator sim = makeSim(4);
    sim.run(15000);
    EXPECT_LE(sim.stats().committedInstructions,
              sim.stats().fetchedInstructions);
    EXPECT_LE(sim.stats().committedInstructions,
              sim.stats().issuedInstructions);
}

TEST(Pipeline, RegisterPressureStallsWithTinyFile)
{
    SmtConfig cfg = presets::baseSmt(4);
    cfg.excessRegisters = 8; // starve renaming.
    Simulator sim(cfg, mixForRun(4, 0));
    sim.run(15000);
    EXPECT_GT(sim.stats().outOfRegistersCycles, 0u);
    sim.core().validateInvariants();
}

TEST(Pipeline, TinyRegisterFileHurtsThroughput)
{
    SmtConfig big = presets::baseSmt(4);
    Simulator a(big, mixForRun(4, 0));
    a.run(20000);

    SmtConfig small = presets::baseSmt(4);
    small.excessRegisters = 10;
    Simulator b(small, mixForRun(4, 0));
    b.run(20000);

    EXPECT_GT(a.stats().ipc(), b.stats().ipc());
}

TEST(Pipeline, InstructionBudgetStopsRun)
{
    Simulator sim = makeSim(1);
    sim.run(/*max_cycles=*/0, /*max_instructions=*/2000);
    EXPECT_GE(sim.stats().committedInstructions, 2000u);
    EXPECT_LT(sim.stats().committedInstructions, 2100u);
}

TEST(Pipeline, WarmupDiscardsStatistics)
{
    Simulator sim = makeSim(1);
    sim.warmup(5000);
    EXPECT_EQ(sim.stats().cycles, 0u);
    EXPECT_EQ(sim.stats().committedInstructions, 0u);
    sim.run(1000);
    EXPECT_EQ(sim.stats().cycles, 1000u);
}

} // namespace
} // namespace smt
