/**
 * @file
 * Unit tests for the policy layer: the priority ordering each fetch
 * policy produces on a hand-built PipelineState, the candidate ordering
 * of each issue policy, registry resolution (including custom policy
 * registration through SmtConfig name overrides), and a golden-stats
 * regression pinning the refactored core to the pre-refactor cycle
 * behaviour on the RR and ICOUNT.2.8 machines.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline_state.hh"
#include "policy/registry.hh"
#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

// ---- Harness ---------------------------------------------------------------

/** A bare machine-state fixture the policies can be queried against. */
class PolicyStateTest : public ::testing::Test
{
  protected:
    PolicyStateTest()
        : cfg_(presets::baseSmt(4)), mem_(cfg_, stats_), bp_(cfg_),
          state_(cfg_, mem_, bp_, stats_)
    {
    }

    std::unique_ptr<policy::FetchPolicy>
    fetchPolicy(const std::string &name)
    {
        return policy::PolicyRegistry::instance().makeFetchPolicy(name);
    }

    std::unique_ptr<policy::IssuePolicy>
    issuePolicy(const std::string &name)
    {
        return policy::PolicyRegistry::instance().makeIssuePolicy(name);
    }

    DynInst *
    mkInst(InstSeqNum seq, ThreadID tid, const StaticInst *si,
           InstStage stage = InstStage::InQueue)
    {
        DynInst *inst = state_.pool.alloc();
        inst->seq = seq;
        inst->tid = tid;
        inst->si = si;
        inst->stage = stage;
        return inst;
    }

    SmtConfig cfg_;
    SimStats stats_;
    MemoryHierarchy mem_;
    BranchPredictor bp_;
    PipelineState state_;
    StaticInst alu_; // default IntAlu, no operands.
};

// ---- Registry --------------------------------------------------------------

TEST(PolicyRegistry, BuiltinsRegistered)
{
    const auto &reg = policy::PolicyRegistry::instance();
    for (const char *name :
         {"RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN",
          "ICOUNT+MISSCOUNT"})
        EXPECT_TRUE(reg.hasFetchPolicy(name)) << name;
    for (const char *name :
         {"OLDEST_FIRST", "OPT_LAST", "SPEC_LAST", "BRANCH_FIRST"})
        EXPECT_TRUE(reg.hasIssuePolicy(name)) << name;
    EXPECT_FALSE(reg.hasFetchPolicy("NO_SUCH_POLICY"));
}

TEST(PolicyRegistry, EnumNamesResolveToMatchingPolicies)
{
    SmtConfig cfg = presets::icount28(4);
    EXPECT_EQ(cfg.resolvedFetchPolicyName(), "ICOUNT");
    EXPECT_EQ(cfg.resolvedIssuePolicyName(), "OLDEST_FIRST");
    EXPECT_STREQ(policy::makeFetchPolicy(cfg)->name(), "ICOUNT");
    EXPECT_STREQ(policy::makeIssuePolicy(cfg)->name(), "OLDEST_FIRST");
}

TEST(PolicyRegistry, NameOverrideBeatsEnum)
{
    SmtConfig cfg = presets::baseSmt(2);
    cfg.fetchPolicy = FetchPolicy::RoundRobin;
    cfg.fetchPolicyName = "ICOUNT+MISSCOUNT";
    EXPECT_STREQ(policy::makeFetchPolicy(cfg)->name(),
                 "ICOUNT+MISSCOUNT");
    EXPECT_EQ(cfg.fetchSchemeName(), "ICOUNT+MISSCOUNT.1.8");
}

TEST(PolicyRegistry, CustomPolicyRunsASimulation)
{
    // A custom policy needs only a registry entry: fetch the highest
    // thread id first (deliberately silly, easy to register).
    class HighestTidPolicy final : public policy::FetchPolicy
    {
      public:
        const char *name() const override { return "HIGHEST_TID"; }

        double
        priorityKey(const PipelineState &, ThreadID tid) const override
        {
            return -static_cast<double>(tid);
        }
    };
    policy::PolicyRegistry::instance().registerFetchPolicy(
        "HIGHEST_TID", [] { return std::make_unique<HighestTidPolicy>(); });

    SmtConfig cfg = presets::baseSmt(2);
    cfg.fetchPolicyName = "HIGHEST_TID";
    Simulator sim(cfg, mixForRun(2, 0));
    sim.run(3000);
    EXPECT_GT(sim.stats().committedInstructions, 500u);
    EXPECT_STREQ(sim.core().fetchPolicy().name(), "HIGHEST_TID");
}

// ---- Fetch policies ----------------------------------------------------------

TEST_F(PolicyStateTest, RoundRobinRanksAllThreadsEqual)
{
    auto p = fetchPolicy("RR");
    state_.frontAndQueueCount[0] = 12;
    state_.frontAndQueueCount[1] = 0;
    EXPECT_EQ(p->priorityKey(state_, 0), p->priorityKey(state_, 1));
}

TEST_F(PolicyStateTest, ICountPrefersThreadWithFewestInstructions)
{
    auto p = fetchPolicy("ICOUNT");
    state_.frontAndQueueCount[0] = 7;
    state_.frontAndQueueCount[1] = 2;
    state_.frontAndQueueCount[2] = 11;
    // Lower key = higher priority: thread 1 first, thread 2 last.
    EXPECT_LT(p->priorityKey(state_, 1), p->priorityKey(state_, 0));
    EXPECT_LT(p->priorityKey(state_, 0), p->priorityKey(state_, 2));
}

TEST_F(PolicyStateTest, BrCountPrefersThreadWithFewestBranches)
{
    auto p = fetchPolicy("BRCOUNT");
    state_.branchCount[0] = 4;
    state_.branchCount[1] = 1;
    state_.frontAndQueueCount[0] = 1; // must not matter.
    state_.frontAndQueueCount[1] = 30;
    EXPECT_LT(p->priorityKey(state_, 1), p->priorityKey(state_, 0));
}

TEST_F(PolicyStateTest, MissCountPenalizesOutstandingDCacheMisses)
{
    auto p = fetchPolicy("MISSCOUNT");
    EXPECT_EQ(p->priorityKey(state_, 0), p->priorityKey(state_, 1));

    // A cold D-cache access misses; the fill is outstanding for a while.
    mem_.dataAccess(0, AddressLayout::dataBase(0), false, 0);
    ASSERT_GT(mem_.outstandingDMisses(0, 1), 0u);
    EXPECT_GT(p->priorityKey(state_, 0), p->priorityKey(state_, 1));
}

TEST_F(PolicyStateTest, IQPosnDeprioritizesThreadNearestQueueHead)
{
    auto p = fetchPolicy("IQPOSN");
    // Thread 0 owns the int-queue head (position 0); thread 1's oldest
    // entry sits behind it (position 2); thread 2 has nothing in the
    // int queue (sentinel position = queue size = farthest = best).
    // Thread 3 fills the FP queue so the empty-queue sentinel there
    // (min over both queues) does not clamp threads 0-2 to zero.
    state_.intQueue.insert(mkInst(1, 0, &alu_));
    state_.intQueue.insert(mkInst(2, 0, &alu_));
    state_.intQueue.insert(mkInst(3, 1, &alu_));
    StaticInst fpop;
    fpop.op = OpClass::FpAlu;
    for (InstSeqNum seq = 4; seq <= 6; ++seq)
        state_.fpQueue.insert(mkInst(seq, 3, &fpop));
    p->beginCycle(state_);
    EXPECT_GT(p->priorityKey(state_, 0), p->priorityKey(state_, 1));
    EXPECT_GT(p->priorityKey(state_, 1), p->priorityKey(state_, 2));
}

TEST_F(PolicyStateTest, IQPosnConsidersBothQueues)
{
    auto p = fetchPolicy("IQPOSN");
    StaticInst fpop;
    fpop.op = OpClass::FpAlu;
    // Thread 0 is one slot from the int-queue head but owns the
    // FP-queue head; thread 2 is one slot from the FP-queue head and
    // absent from the int queue. The closest position across both
    // queues governs, so thread 0 (FP head) ranks below thread 2.
    state_.intQueue.insert(mkInst(1, 1, &alu_));
    state_.intQueue.insert(mkInst(2, 0, &alu_));
    state_.fpQueue.insert(mkInst(3, 0, &fpop));
    state_.fpQueue.insert(mkInst(4, 2, &fpop));
    p->beginCycle(state_);
    EXPECT_GT(p->priorityKey(state_, 0), p->priorityKey(state_, 2));
}

TEST_F(PolicyStateTest, HybridICountMissCountBlendsBothSignals)
{
    auto p = fetchPolicy("ICOUNT+MISSCOUNT");
    state_.frontAndQueueCount[0] = 2;
    state_.frontAndQueueCount[1] = 3;
    // Without misses the hybrid degenerates to ICOUNT order...
    EXPECT_LT(p->priorityKey(state_, 0), p->priorityKey(state_, 1));
    // ...but an outstanding miss on thread 0 outweighs its small
    // occupancy edge.
    mem_.dataAccess(0, AddressLayout::dataBase(0), false, 0);
    ASSERT_GT(mem_.outstandingDMisses(0, 1), 0u);
    EXPECT_GT(p->priorityKey(state_, 0), p->priorityKey(state_, 1));
}

// ---- Issue policies -----------------------------------------------------------

TEST_F(PolicyStateTest, OldestFirstOrdersBySequence)
{
    auto p = issuePolicy("OLDEST_FIRST");
    std::vector<DynInst *> cands = {mkInst(9, 0, &alu_), mkInst(3, 1, &alu_),
                                    mkInst(5, 0, &alu_)};
    p->order(state_, cands);
    EXPECT_EQ(cands[0]->seq, 3u);
    EXPECT_EQ(cands[1]->seq, 5u);
    EXPECT_EQ(cands[2]->seq, 9u);
}

TEST_F(PolicyStateTest, BranchFirstHoistsControlInstructions)
{
    auto p = issuePolicy("BRANCH_FIRST");
    StaticInst branch;
    branch.op = OpClass::CondBranch;
    std::vector<DynInst *> cands = {mkInst(1, 0, &alu_),
                                    mkInst(8, 0, &branch),
                                    mkInst(2, 0, &alu_)};
    p->order(state_, cands);
    EXPECT_EQ(cands[0]->seq, 8u); // the branch, though youngest.
    EXPECT_EQ(cands[1]->seq, 1u);
    EXPECT_EQ(cands[2]->seq, 2u);
}

TEST_F(PolicyStateTest, SpecLastDemotesInstructionsBehindABranch)
{
    auto p = issuePolicy("SPEC_LAST");
    StaticInst branch;
    branch.op = OpClass::CondBranch;
    // Thread 0 has an unresolved branch at seq 4: its seq-6 candidate
    // is speculative; thread 1's seq-9 candidate is not.
    DynInst *br = mkInst(4, 0, &branch);
    state_.threads[0].unresolvedBranches.push_back(br);
    std::vector<DynInst *> cands = {mkInst(6, 0, &alu_),
                                    mkInst(9, 1, &alu_)};
    p->order(state_, cands);
    EXPECT_EQ(cands[0]->seq, 9u);
    EXPECT_EQ(cands[1]->seq, 6u);
}

TEST_F(PolicyStateTest, OptLastDemotesUnverifiedLoadDependents)
{
    auto p = issuePolicy("OPT_LAST");
    StaticInst consumer;
    consumer.src1 = LogReg::intReg(3);
    // The consumer's renamed source is optimistic (unverified) until
    // cycle 5; the plain ALU op is not.
    DynInst *opt = mkInst(2, 0, &consumer);
    opt->src1Phys = 40;
    state_.intRegs.setUnverifiedUntil(40, 5);
    std::vector<DynInst *> cands = {opt, mkInst(7, 0, &alu_)};
    p->order(state_, cands);
    EXPECT_EQ(cands[0]->seq, 7u);
    EXPECT_EQ(cands[1]->seq, 2u);
    // Once verified, age order returns.
    state_.intRegs.setUnverifiedUntil(40, 0);
    p->order(state_, cands);
    EXPECT_EQ(cands[0]->seq, 2u);
}

// ---- Golden-stats regression ---------------------------------------------------

/**
 * Pre-refactor committed/fetched/issued counts of the monolithic core
 * (seed 1, mixForRun, 20000 cycles), captured before SmtCore was split
 * into stage modules. The stage-per-class core must stay cycle-exact.
 */
TEST(GoldenStats, RrBaseMachineMatchesPreRefactorCore)
{
    SmtConfig cfg = presets::baseSmt(4);
    Simulator sim(cfg, mixForRun(4, 0));
    sim.run(20000);
    const SimStats &s = sim.stats();
    EXPECT_EQ(s.committedInstructions, 33373u);
    EXPECT_EQ(s.fetchedInstructions, 36046u);
    EXPECT_EQ(s.issuedInstructions, 40476u);
    EXPECT_EQ(s.condBranchMispredicts, 81u);
    EXPECT_EQ(s.dcache.misses, 1293u);
}

TEST(GoldenStats, Icount28MatchesPreRefactorCore)
{
    SmtConfig cfg = presets::icount28(4);
    Simulator sim(cfg, mixForRun(4, 0));
    sim.run(20000);
    const SimStats &s = sim.stats();
    EXPECT_EQ(s.committedInstructions, 33173u);
    EXPECT_EQ(s.fetchedInstructions, 35951u);
    EXPECT_EQ(s.issuedInstructions, 39341u);
    EXPECT_EQ(s.condBranchMispredicts, 88u);
    EXPECT_EQ(s.dcache.misses, 1261u);
    EXPECT_EQ(s.optimisticSquashes, 2467u);
}

} // namespace
} // namespace smt
