/**
 * @file
 * Tests for the sweep engine: JSON round-trips, digest stability,
 * spec grid expansion, the on-disk result cache, and thread-pool
 * scheduling determinism.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>

#include "sweep/digest.hh"
#include "sweep/experiments.hh"
#include "sweep/json.hh"
#include "sweep/result_cache.hh"
#include "sweep/runner.hh"
#include "sweep/serialize.hh"
#include "sweep/spec.hh"
#include "sweep/thread_pool.hh"

namespace smt::sweep
{
namespace
{

namespace fs = std::filesystem;

/** Tiny budgets so a whole grid measures in well under a second. */
MeasureOptions
tinyOptions()
{
    MeasureOptions opts;
    opts.cyclesPerRun = 1200;
    opts.warmupCycles = 300;
    opts.runs = 2;
    return opts;
}

/** A scratch directory removed when the test ends. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_((fs::temp_directory_path()
                 / ("smtsweep_test_" + tag + "_"
                    + std::to_string(std::random_device{}())))
                    .string())
    {
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ---- JSON ------------------------------------------------------------------

TEST(Json, RoundTripsNestedValues)
{
    Json obj = Json::object();
    obj.set("uint", Json(std::uint64_t{18446744073709551615ull}));
    obj.set("int", Json(std::int64_t{-42}));
    obj.set("double", Json(3.25));
    obj.set("bool", Json(true));
    obj.set("null", Json());
    obj.set("string", Json("line\nbreak \"quoted\" \\slash\t"));
    Json arr = Json::array();
    arr.push(Json(std::uint64_t{1}));
    arr.push(Json("two"));
    Json inner = Json::object();
    inner.set("empty_array", Json::array());
    inner.set("empty_object", Json::object());
    arr.push(std::move(inner));
    obj.set("array", std::move(arr));

    for (int indent : {-1, 2}) {
        Json parsed;
        ASSERT_TRUE(Json::parse(obj.dump(indent), parsed));
        EXPECT_TRUE(parsed == obj);
    }
    EXPECT_EQ(obj.at("uint").asUInt(), 18446744073709551615ull);
    EXPECT_EQ(obj.at("int").asInt(), -42);
}

TEST(Json, RejectsMalformedInput)
{
    Json out;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "nul", "\"unterminated",
          "{\"a\":1} trailing", "--1",
          // Out-of-range numbers must be rejected, not clamped.
          "99999999999999999999", "-99999999999999999999", "1e999"})
        EXPECT_FALSE(Json::parse(bad, out)) << bad;
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json obj = Json::object();
    obj.set("z", Json(std::uint64_t{1}));
    obj.set("a", Json(std::uint64_t{2}));
    EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2}");
    obj.set("z", Json(std::uint64_t{3})); // replaces in place.
    EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
}

// ---- SimStats serialization ------------------------------------------------

TEST(Serialize, SimStatsRoundTripsBitIdentically)
{
    const DataPoint measured =
        measure(presets::baseSmt(2), tinyOptions());

    SimStats restored;
    ASSERT_TRUE(simStatsFromJson(toJson(measured.stats), restored));
    // Field-exact: the canonical dumps must be byte-identical, which
    // covers every counter and the histogram's buckets/sum/samples.
    EXPECT_EQ(toJson(restored).dump(), toJson(measured.stats).dump());
    EXPECT_EQ(restored.cycles, measured.stats.cycles);
    EXPECT_EQ(restored.committedInstructions,
              measured.stats.committedInstructions);
    EXPECT_DOUBLE_EQ(restored.avgQueuePopulation(),
                     measured.stats.avgQueuePopulation());
}

TEST(Serialize, SimStatsFromJsonRejectsMissingFields)
{
    Json j = toJson(SimStats{});
    Json incomplete = Json::object();
    incomplete.set("cycles", Json(std::uint64_t{1}));
    SimStats out;
    EXPECT_FALSE(simStatsFromJson(incomplete, out));
    EXPECT_FALSE(simStatsFromJson(Json(std::uint64_t{7}), out));
    EXPECT_TRUE(simStatsFromJson(j, out));

    // A wrong-typed or wrong-shaped value (a stale or hand-edited
    // cache entry) must read as false, never abort the process.
    Json wrong_type = toJson(SimStats{});
    wrong_type.set("cycles", Json("not a number"));
    EXPECT_FALSE(simStatsFromJson(wrong_type, out));
    Json bad_nested = toJson(SimStats{});
    Json icache = Json::object();
    icache.set("accesses", Json(std::uint64_t{1}));
    bad_nested.set("icache", std::move(icache)); // missing counters.
    EXPECT_FALSE(simStatsFromJson(bad_nested, out));
}

// ---- Digests ---------------------------------------------------------------

TEST(Digest, IdenticalKeysDigestIdentically)
{
    const MeasureOptions opts = tinyOptions();
    const SmtConfig a = presets::icount28(4);
    const SmtConfig b = presets::icount28(4);
    EXPECT_EQ(measurementDigest(a, opts), measurementDigest(b, opts));
}

TEST(Digest, EnumAndNameSelectionDigestIdentically)
{
    // Both spell the same machine, so they must share a cache slot.
    const MeasureOptions opts = tinyOptions();
    SmtConfig by_enum = presets::baseSmt(4);
    by_enum.fetchPolicy = FetchPolicy::ICount;
    SmtConfig by_name = presets::baseSmt(4);
    by_name.fetchPolicyName = "ICOUNT";
    EXPECT_EQ(measurementDigest(by_enum, opts),
              measurementDigest(by_name, opts));
}

TEST(Digest, AnyKnobChangeChangesTheDigest)
{
    const MeasureOptions opts = tinyOptions();
    const SmtConfig base = presets::baseSmt(4);
    const std::string base_digest = measurementDigest(base, opts);

    std::vector<SmtConfig> variants;
    for (const char *knob :
         {"numThreads", "fetchThreads", "fetchPerThread", "intQueueEntries",
          "iqSearchWindow", "excessRegisters", "totalPhysRegisters",
          "btbEntries", "phtEntries", "seed", "disambiguationBits"}) {
        SmtConfig cfg = base;
        applyKnob(cfg, {knob, Json(std::uint64_t{7})});
        variants.push_back(cfg);
    }
    for (const char *knob :
         {"itagEarlyLookup", "perfectBranchPrediction",
          "infiniteFunctionalUnits", "infiniteCacheBandwidth"}) {
        SmtConfig cfg = base;
        applyKnob(cfg, {knob, Json(true)});
        variants.push_back(cfg);
    }
    {
        SmtConfig cfg = base;
        cfg.fetchPolicyName = "ICOUNT";
        variants.push_back(cfg);
        cfg = base;
        cfg.issuePolicyName = "OPT_LAST";
        variants.push_back(cfg);
        cfg = base;
        cfg.l2.sizeBytes *= 2;
        variants.push_back(cfg);
    }

    std::vector<std::string> digests = {base_digest};
    for (const SmtConfig &cfg : variants) {
        const std::string d = measurementDigest(cfg, opts);
        for (const std::string &seen : digests)
            EXPECT_NE(d, seen);
        digests.push_back(d);
    }

    // Measurement knobs are part of the key too...
    MeasureOptions more_cycles = opts;
    more_cycles.cyclesPerRun += 1;
    EXPECT_NE(measurementDigest(base, more_cycles), base_digest);
    MeasureOptions more_runs = opts;
    more_runs.runs += 1;
    EXPECT_NE(measurementDigest(base, more_runs), base_digest);
    // ...but the execution strategy is not (parallel == serial).
    MeasureOptions serial = opts;
    serial.parallel = !opts.parallel;
    EXPECT_EQ(measurementDigest(base, serial), base_digest);
}

// ---- Spec expansion --------------------------------------------------------

TEST(Spec, Fig5GridExpandsToTheFullCartesianProduct)
{
    const NamedExperiment *fig5 = findExperiment("fig5");
    ASSERT_NE(fig5, nullptr);
    const std::vector<SweepPoint> points =
        fig5->spec.expand(tinyOptions());
    // 2 partitionings x 5 policies x 4 thread counts.
    ASSERT_EQ(points.size(), 40u);

    // Thread counts innermost, axes outermost-first.
    EXPECT_EQ(points[0].label, "1.8.RR");
    EXPECT_EQ(points[0].threads, 2u);
    EXPECT_EQ(points[3].threads, 8u);
    EXPECT_EQ(points[4].label, "1.8.BRCOUNT");

    // The 2.8/ICOUNT/4T point carries exactly the expected machine.
    const SweepPoint &p = points[1 * 5 * 4 + 3 * 4 + 1];
    EXPECT_EQ(p.label, "2.8.ICOUNT");
    EXPECT_EQ(p.threads, 4u);
    EXPECT_EQ(p.config.numThreads, 4u);
    EXPECT_EQ(p.config.fetchThreads, 2u);
    EXPECT_EQ(p.config.fetchPerThread, 8u);
    EXPECT_EQ(p.config.resolvedFetchPolicyName(), "ICOUNT");
    EXPECT_EQ(p.config.fetchSchemeName(), "ICOUNT.2.8");
    EXPECT_EQ(p.options.cyclesPerRun, tinyOptions().cyclesPerRun);
    p.config.validate();
}

TEST(Spec, ThreadCountOverridePinsReferencePoints)
{
    const NamedExperiment *fig3 = findExperiment("fig3");
    ASSERT_NE(fig3, nullptr);
    const std::vector<SweepPoint> points =
        fig3->spec.expand(tinyOptions());
    // 5 SMT thread counts + 1 single-thread superscalar point.
    ASSERT_EQ(points.size(), 6u);
    const SweepPoint &superscalar = points.back();
    EXPECT_EQ(superscalar.threads, 1u);
    EXPECT_FALSE(superscalar.config.longRegisterPipeline);
}

TEST(Spec, EveryNamedExperimentExpandsToValidConfigs)
{
    for (const NamedExperiment &e : allExperiments()) {
        const std::vector<SweepPoint> points =
            e.spec.expand(tinyOptions());
        EXPECT_FALSE(points.empty()) << e.spec.name;
        EXPECT_EQ(points.size(), e.spec.gridSize()) << e.spec.name;
        for (const SweepPoint &p : points)
            p.config.validate();
        EXPECT_FALSE(e.spec.describe().dump().empty());
    }
}

TEST(Spec, UnknownKnobsAreFatal)
{
    // Re-exec instead of forking: other tests may have started the
    // global thread pool, and forked children must not inherit it.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    SmtConfig cfg;
    EXPECT_DEATH(applyKnob(cfg, {"no_such_knob", Json(std::uint64_t{1})}),
                 "unknown config knob");
}

// ---- Thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(3);
    std::atomic<int> sum{0};
    std::vector<std::future<int>> futures;
    for (int i = 1; i <= 100; ++i)
        futures.push_back(pool.submit([i, &sum] {
            sum += i;
            return i * 2;
        }));
    long long doubled = 0;
    for (auto &f : futures)
        doubled += pool.wait(std::move(f));
    EXPECT_EQ(sum.load(), 5050);
    EXPECT_EQ(doubled, 2 * 5050);
}

TEST(ThreadPool, WaitersHelpSoNestedSubmissionCannotDeadlock)
{
    // One worker; the outer task submits and awaits inner tasks. With
    // a non-helping wait this deadlocks (worker blocked on children
    // that can never be scheduled).
    ThreadPool pool(1);
    auto outer = pool.submit([&pool] {
        std::vector<std::future<int>> inner;
        for (int i = 0; i < 4; ++i)
            inner.push_back(pool.submit([i] { return i; }));
        int total = 0;
        for (auto &f : inner)
            total += pool.wait(std::move(f));
        return total;
    });
    EXPECT_EQ(pool.wait(std::move(outer)), 6);
}

TEST(ThreadPool, ParallelMeasurementMatchesSerialBitForBit)
{
    MeasureOptions parallel_opts = tinyOptions();
    parallel_opts.runs = 4;
    parallel_opts.parallel = true;
    MeasureOptions serial_opts = parallel_opts;
    serial_opts.parallel = false;

    const SmtConfig cfg = presets::icount28(2);
    const DataPoint p = measure(cfg, parallel_opts);
    const DataPoint s = measure(cfg, serial_opts);
    EXPECT_EQ(toJson(p.stats).dump(), toJson(s.stats).dump());
}

// ---- Result cache ----------------------------------------------------------

TEST(ResultCache, HitReplaysStoredStatsBitIdentically)
{
    TempDir dir("cache");
    ResultCache cache(dir.path());

    const SmtConfig cfg = presets::baseSmt(2);
    const MeasureOptions opts = tinyOptions();
    const std::string digest = measurementDigest(cfg, opts);
    EXPECT_FALSE(cache.lookup(digest).has_value());

    const DataPoint measured = measure(cfg, opts);
    cache.store(digest, cfg, opts, measured.stats);
    EXPECT_EQ(cache.entryCount(), 1u);

    const std::optional<SimStats> hit = cache.lookup(digest);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(toJson(*hit).dump(), toJson(measured.stats).dump());
}

TEST(ResultCache, CorruptEntriesAreMisses)
{
    TempDir dir("corrupt");
    ResultCache cache(dir.path());
    const std::string digest(32, 'a');
    {
        std::FILE *f = std::fopen(
            (dir.path() + "/" + digest + ".json").c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"digest\": \"truncated", f);
        std::fclose(f);
    }
    EXPECT_FALSE(cache.lookup(digest).has_value());
}

// ---- Runner ----------------------------------------------------------------

TEST(Runner, SecondSweepIsAllCacheHitsAndBitIdentical)
{
    TempDir dir("runner");
    const NamedExperiment *smoke = findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    RunnerOptions ropts;
    ropts.measure = tinyOptions();
    ropts.cacheDir = dir.path();

    const SweepOutcome cold = runSweep(smoke->spec, ropts);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, cold.points.size());

    ropts.requireCached = true; // would abort on any miss.
    const SweepOutcome warm = runSweep(smoke->spec, ropts);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.cacheHits, warm.points.size());

    ASSERT_EQ(cold.points.size(), warm.points.size());
    for (std::size_t i = 0; i < cold.points.size(); ++i) {
        EXPECT_EQ(cold.points[i].digest, warm.points[i].digest);
        EXPECT_EQ(toJson(cold.points[i].data.stats).dump(),
                  toJson(warm.points[i].data.stats).dump());
    }
}

TEST(Runner, ParallelAndSerialSweepsAgreeBitForBit)
{
    const NamedExperiment *smoke = findExperiment("smoke");
    ASSERT_NE(smoke, nullptr);

    RunnerOptions parallel_opts;
    parallel_opts.measure = tinyOptions();
    RunnerOptions serial_opts = parallel_opts;
    serial_opts.measure.parallel = false;

    const SweepOutcome p = runSweep(smoke->spec, parallel_opts);
    const SweepOutcome s = runSweep(smoke->spec, serial_opts);
    ASSERT_EQ(p.points.size(), s.points.size());
    for (std::size_t i = 0; i < p.points.size(); ++i)
        EXPECT_EQ(toJson(p.points[i].data.stats).dump(),
                  toJson(s.points[i].data.stats).dump());
}

TEST(Runner, DuplicatePointsAreMeasuredOnce)
{
    // Two identical points (no cache): the runner schedules one
    // simulation and shares the result.
    SweepPoint point;
    point.label = "dup";
    point.threads = 1;
    point.config = presets::baseSmt(1);
    point.options = tinyOptions();

    RunnerOptions ropts;
    ropts.measure = tinyOptions();
    const std::vector<PointResult> results =
        runPoints({point, point}, ropts);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].digest, results[1].digest);
    EXPECT_EQ(toJson(results[0].data.stats).dump(),
              toJson(results[1].data.stats).dump());
}

TEST(Runner, SweepForAndAtIndexTheGrid)
{
    const NamedExperiment *smoke = findExperiment("smoke");
    RunnerOptions ropts;
    ropts.measure = tinyOptions();
    const SweepOutcome outcome = runSweep(smoke->spec, ropts);

    const ThreadSweep rr = outcome.sweepFor({0}, "RR");
    EXPECT_EQ(rr.threads, smoke->spec.threadCounts);
    EXPECT_EQ(rr.ipcAt(2), outcome.at({0}, 2).data.ipc());
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH((void)rr.ipcAt(7), "no 7-thread data point");
}

} // namespace
} // namespace smt::sweep
