/**
 * @file
 * Tests for the ISA layer: the Table 1 latencies and the op-class and
 * StaticInst predicates the pipeline depends on.
 */

#include <gtest/gtest.h>

#include "isa/latency.hh"
#include "isa/op_class.hh"
#include "isa/static_inst.hh"

namespace smt
{
namespace
{

TEST(Latency, MatchesTable1)
{
    EXPECT_EQ(opLatency(OpClass::IntMult), 8u);
    EXPECT_EQ(opLatency(OpClass::IntMultLong), 16u);
    EXPECT_EQ(opLatency(OpClass::CondMove), 2u);
    EXPECT_EQ(opLatency(OpClass::Compare), 0u);
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opLatency(OpClass::FpDiv), 17u);
    EXPECT_EQ(opLatency(OpClass::FpDivLong), 30u);
    EXPECT_EQ(opLatency(OpClass::FpAlu), 4u);
    EXPECT_EQ(opLatency(OpClass::Load), 1u);
}

TEST(Latency, FullyPipelinedUnits)
{
    for (unsigned c = 0; c < kNumOpClasses; ++c)
        EXPECT_EQ(opIssueOccupancy(static_cast<OpClass>(c)), 1u);
}

TEST(OpClass, ControlPredicates)
{
    EXPECT_TRUE(isControl(OpClass::CondBranch));
    EXPECT_TRUE(isControl(OpClass::Jump));
    EXPECT_TRUE(isControl(OpClass::Call));
    EXPECT_TRUE(isControl(OpClass::Return));
    EXPECT_TRUE(isControl(OpClass::IndirectJump));
    EXPECT_FALSE(isControl(OpClass::IntAlu));
    EXPECT_FALSE(isControl(OpClass::Load));
    EXPECT_FALSE(isControl(OpClass::Compare));
}

TEST(OpClass, IndirectControlNeedsPrediction)
{
    EXPECT_TRUE(isIndirectControl(OpClass::Return));
    EXPECT_TRUE(isIndirectControl(OpClass::IndirectJump));
    EXPECT_FALSE(isIndirectControl(OpClass::Jump));
    EXPECT_FALSE(isIndirectControl(OpClass::Call));
    EXPECT_FALSE(isIndirectControl(OpClass::CondBranch));
}

TEST(OpClass, MemoryAndFloatPredicates)
{
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::Store));
    EXPECT_FALSE(isMemory(OpClass::IntAlu));
    EXPECT_TRUE(isFloatOp(OpClass::FpAlu));
    EXPECT_TRUE(isFloatOp(OpClass::FpDiv));
    EXPECT_TRUE(isFloatOp(OpClass::FpDivLong));
    EXPECT_FALSE(isFloatOp(OpClass::Load)); // FP loads use the int queue.
    EXPECT_FALSE(isFloatOp(OpClass::IntMult));
}

TEST(OpClass, NamesAreDistinct)
{
    for (unsigned a = 0; a < kNumOpClasses; ++a) {
        for (unsigned b = a + 1; b < kNumOpClasses; ++b) {
            EXPECT_STRNE(opClassName(static_cast<OpClass>(a)),
                         opClassName(static_cast<OpClass>(b)));
        }
    }
}

TEST(StaticInst, QueueSteering)
{
    StaticInst ld;
    ld.op = OpClass::Load;
    ld.dest = LogReg::fpReg(4); // FP load...
    EXPECT_FALSE(ld.usesFpQueue()); // ...still goes to the integer queue.

    StaticInst fp;
    fp.op = OpClass::FpAlu;
    EXPECT_TRUE(fp.usesFpQueue());

    StaticInst br;
    br.op = OpClass::CondBranch;
    EXPECT_FALSE(br.usesFpQueue());
}

TEST(StaticInst, RegOperands)
{
    const LogReg none = LogReg::none();
    EXPECT_FALSE(none.valid());
    const LogReg r5 = LogReg::intReg(5);
    EXPECT_TRUE(r5.valid());
    EXPECT_EQ(r5.index, 5);
    EXPECT_EQ(r5.file, RegFile::Int);
    const LogReg f7 = LogReg::fpReg(7);
    EXPECT_EQ(f7.file, RegFile::Fp);
}

TEST(StaticInst, TargetPrediction)
{
    StaticInst ret;
    ret.op = OpClass::Return;
    EXPECT_TRUE(ret.needsTargetPrediction());
    StaticInst jmp;
    jmp.op = OpClass::Jump;
    EXPECT_FALSE(jmp.needsTargetPrediction());
}

} // namespace
} // namespace smt
