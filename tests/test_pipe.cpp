/**
 * @file
 * Pipeline-microscope tests: attaching a pipetrace must never disturb
 * the simulation (cycle identity across every registered policy pair
 * under both engines), every traced instruction must close (commit or
 * squash — the `smtpipe --check` gate, green on a real file and red on
 * a truncated one), the admission window and sample period must bound
 * what is emitted, the Chrome export's lanes must never overlap, and
 * the sweep outcome artifact must carry the sampled occupancy
 * histogram.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/pipe_analysis.hh"
#include "obs/pipe_trace.hh"
#include "obs/trace_analysis.hh"
#include "sim/simulator.hh"
#include "sweep/runner.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

struct PolicyPair
{
    const char *fetch;
    const char *issue;
};

/** Every (fetch, issue) pair the paper registers an engine for. */
constexpr PolicyPair kRegisteredPairs[] = {
    {"RR", "OLDEST_FIRST"},
    {"BRCOUNT", "OLDEST_FIRST"},
    {"MISSCOUNT", "OLDEST_FIRST"},
    {"ICOUNT", "OLDEST_FIRST"},
    {"IQPOSN", "OLDEST_FIRST"},
    {"ICOUNT+MISSCOUNT", "OLDEST_FIRST"},
    {"ICOUNT", "OPT_LAST"},
    {"ICOUNT", "SPEC_LAST"},
    {"ICOUNT", "BRANCH_FIRST"},
};

/** The stat fields a single divergent cycle anywhere would disturb. */
struct StatKey
{
    std::uint64_t cycles, committed, fetched, fetchedWrongPath, issued,
        issuedWrongPath, optimisticSquashes, mispredicts, dcacheMisses;

    static StatKey
    of(const SimStats &s)
    {
        return {s.cycles,
                s.committedInstructions,
                s.fetchedInstructions,
                s.fetchedWrongPath,
                s.issuedInstructions,
                s.issuedWrongPath,
                s.optimisticSquashes,
                s.condBranchMispredicts,
                s.dcache.misses};
    }

    bool
    operator==(const StatKey &o) const
    {
        return cycles == o.cycles && committed == o.committed &&
               fetched == o.fetched &&
               fetchedWrongPath == o.fetchedWrongPath &&
               issued == o.issued &&
               issuedWrongPath == o.issuedWrongPath &&
               optimisticSquashes == o.optimisticSquashes &&
               mispredicts == o.mispredicts &&
               dcacheMisses == o.dcacheMisses;
    }
};

std::string
tempPath(const char *name)
{
    return std::string("test_pipe_") + name + ".jsonl";
}

/** Run one traced simulation into `path` and return its stats. */
SimStats
tracedRun(const SmtConfig &cfg, const std::string &path,
          const obs::PipeTraceOptions &opts,
          CoreDispatch dispatch = CoreDispatch::Auto,
          std::uint64_t cycles = 4000)
{
    obs::PipeTraceSink sink(path);
    obs::PipeTrace pipe(sink, opts);
    Simulator sim(cfg, mixForRun(cfg.numThreads, 0), 0, dispatch);
    sim.attachPipeTrace(&pipe);
    sim.run(cycles);
    pipe.finish();
    return sim.stats();
}

obs::PipeAnalysis
analyzeFile(const std::string &path)
{
    obs::TraceSet set;
    std::string error;
    EXPECT_TRUE(set.addFile(path, &error)) << error;
    return obs::analyzePipe(set);
}

// ---- Cycle identity: tracing must be a pure observer ----------------------

TEST(PipeIdentity, TracedRunIsCycleIdenticalForAllPairsBothEngines)
{
    const std::string path = tempPath("identity");
    obs::PipeTraceOptions topts;
    topts.windowFirst = 100;
    topts.windowLast = 600;
    topts.samplePeriod = 50;

    for (const PolicyPair &pair : kRegisteredPairs) {
        SmtConfig cfg = presets::baseSmt(4);
        cfg.fetchPolicyName = pair.fetch;
        cfg.issuePolicyName = pair.issue;

        for (CoreDispatch dispatch :
             {CoreDispatch::Auto, CoreDispatch::ForceGeneric}) {
            Simulator plain(cfg, mixForRun(4, 0), 0, dispatch);
            plain.run(4000);

            const SimStats traced =
                tracedRun(cfg, path, topts, dispatch);
            EXPECT_TRUE(StatKey::of(plain.stats()) == StatKey::of(traced))
                << "pipetrace disturbed " << pair.fetch << "."
                << pair.issue << " ("
                << (dispatch == CoreDispatch::Auto ? "specialized"
                                                   : "generic")
                << ")";
        }
    }
    std::remove(path.c_str());
}

// ---- Lifecycle closure: the --check gate ----------------------------------

TEST(PipeClosure, EveryTracedInstructionReachesCommitOrSquash)
{
    const std::string path = tempPath("closure");
    obs::PipeTraceOptions topts;
    topts.windowFirst = 200;
    topts.windowLast = 1200;
    topts.samplePeriod = 100;
    tracedRun(presets::icount28(4), path, topts);

    const obs::PipeAnalysis analysis = analyzeFile(path);
    ASSERT_EQ(analysis.streams.size(), 1u);
    EXPECT_GT(analysis.instructions, 0u);
    EXPECT_EQ(analysis.open, 0u);
    EXPECT_EQ(analysis.missingStart, 0u);
    EXPECT_EQ(analysis.missingDone, 0u);
    EXPECT_TRUE(obs::checkPipe(analysis).empty());

    // Instructions in flight when the run budget expired were closed
    // as "drain" squashes and counted by pipe_done.
    const obs::PipeStream &s = analysis.streams[0];
    std::size_t drained = 0;
    for (const obs::PipeInst &inst : s.insts)
        if (inst.squashCause == "drain")
            ++drained;
    EXPECT_EQ(drained, s.drained);
    std::remove(path.c_str());
}

TEST(PipeClosure, CheckFailsOnTruncatedFile)
{
    const std::string path = tempPath("full");
    const std::string cut = tempPath("cut");
    obs::PipeTraceOptions topts;
    topts.windowFirst = 200;
    topts.windowLast = 1200;
    tracedRun(presets::icount28(2), path, topts);

    // Keep the head of the file: pipe_start survives, pipe_done and
    // the tail of the lifecycles do not — the torn-file signature.
    std::vector<std::string> lines;
    std::ifstream in(path);
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_GT(lines.size(), 10u);
    std::ofstream out(cut, std::ios::trunc);
    for (std::size_t i = 0; i < lines.size() / 2; ++i)
        out << lines[i] << "\n";
    out.close();

    const obs::PipeAnalysis analysis = analyzeFile(cut);
    ASSERT_EQ(analysis.streams.size(), 1u);
    EXPECT_EQ(analysis.missingDone, 1u);
    EXPECT_FALSE(obs::checkPipe(analysis).empty());

    // An empty corpus is also a failure, not a silent pass.
    EXPECT_FALSE(obs::checkPipe(obs::PipeAnalysis{}).empty());

    std::remove(path.c_str());
    std::remove(cut.c_str());
}

// ---- Window and sample bounding -------------------------------------------

TEST(PipeWindow, OnlyInWindowFetchesAreTracedAndSamplesHitThePeriod)
{
    const std::string path = tempPath("window");
    obs::PipeTraceOptions topts;
    topts.windowFirst = 300;
    topts.windowLast = 700;
    topts.samplePeriod = 50;
    tracedRun(presets::icount28(4), path, topts);

    const obs::PipeAnalysis analysis = analyzeFile(path);
    ASSERT_EQ(analysis.streams.size(), 1u);
    const obs::PipeStream &s = analysis.streams[0];
    EXPECT_EQ(s.windowFirst, 300u);
    EXPECT_EQ(s.windowLast, 700u);
    EXPECT_GT(s.insts.size(), 0u);
    for (const obs::PipeInst &inst : s.insts) {
        ASSERT_NE(inst.fetch, kCycleNever);
        EXPECT_GE(inst.fetch, 300u);
        EXPECT_LE(inst.fetch, 700u);
    }
    ASSERT_GT(s.samples.size(), 0u);
    for (const obs::PipeSample &sample : s.samples) {
        EXPECT_EQ(sample.cyc % 50, 0u);
        EXPECT_GE(sample.cyc, 300u);
        EXPECT_LE(sample.cyc, 700u);
        EXPECT_EQ(sample.iq.size(), 4u);
        EXPECT_EQ(sample.fetched.size(), 4u);
        EXPECT_TRUE(sample.stalls.has("issueOperandWait"));
    }
    std::remove(path.c_str());
}

TEST(PipeWindow, SamplePeriodZeroEmitsNoSamples)
{
    const std::string path = tempPath("nosample");
    obs::PipeTraceOptions topts;
    topts.windowFirst = 0;
    topts.windowLast = 500;
    tracedRun(presets::baseSmt(2), path, topts, CoreDispatch::Auto,
              1500);
    const obs::PipeAnalysis analysis = analyzeFile(path);
    ASSERT_EQ(analysis.streams.size(), 1u);
    EXPECT_TRUE(analysis.streams[0].samples.empty());
    std::remove(path.c_str());
}

// ---- Chrome export ----------------------------------------------------------

TEST(ChromeLanes, BuilderReusesALaneOnlyAfterItEnds)
{
    obs::ChromeTraceBuilder chrome;
    EXPECT_EQ(chrome.lane("g", 0.0, 10.0), 0u);
    EXPECT_EQ(chrome.lane("g", 5.0, 8.0), 1u);  // overlaps lane 0.
    EXPECT_EQ(chrome.lane("g", 10.0, 12.0), 0u); // lane 0 ended at 10.
    EXPECT_EQ(chrome.lane("g", 11.0, 13.0), 1u); // lane 1 ended at 8.
    EXPECT_EQ(chrome.lane("h", 11.5, 14.0), 0u); // fresh group.
    EXPECT_EQ(chrome.laneCount("g"), 2u);
    EXPECT_EQ(chrome.laneCount("h"), 1u);
}

TEST(ChromeExport, SpansNeverOverlapWithinALaneAndAllClose)
{
    const std::string path = tempPath("chrome");
    obs::PipeTraceOptions topts;
    topts.windowFirst = 200;
    topts.windowLast = 900;
    tracedRun(presets::icount28(4), path, topts);

    const obs::PipeAnalysis analysis = analyzeFile(path);
    const sweep::Json doc = obs::pipeChromeTrace(analysis);
    ASSERT_TRUE(doc.has("traceEvents"));
    const sweep::Json &events = doc.at("traceEvents");
    ASSERT_GT(events.size(), 0u);

    // Group X spans by (pid, tid); within one lane, sorted spans must
    // tile without overlap — that is what the lane fan-out is for.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<std::pair<double, double>>>
        lanes;
    std::size_t completes = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const sweep::Json &ev = events[i];
        if (ev.at("ph").asString() != "X")
            continue;
        ++completes;
        EXPECT_TRUE(ev.at("args").has("seq"));
        lanes[{ev.at("pid").asUInt(), ev.at("tid").asUInt()}]
            .emplace_back(ev.at("ts").asDouble(),
                          ev.at("ts").asDouble()
                              + ev.at("dur").asDouble());
    }
    EXPECT_GT(completes, 0u);
    for (auto &[key, spans] : lanes) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i)
            EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-9)
                << "overlapping spans in pid " << key.first << " tid "
                << key.second;
    }
    std::remove(path.c_str());
}

// ---- Sweep artifact carries the occupancy histogram ------------------------

TEST(OutcomeArtifact, PointsCarrySampledOccupancy)
{
    // A real short run so combinedQueuePopulation has samples.
    Simulator sim(presets::icount28(2), mixForRun(2, 0));
    sim.run(2000);

    sweep::SweepOutcome outcome;
    outcome.spec.name = "unit";
    outcome.spec.title = "unit";
    sweep::PointResult r;
    r.point.label = "unit";
    r.point.threads = 2;
    r.digest = "0000";
    r.data.stats = sim.stats();
    outcome.points.push_back(std::move(r));

    const sweep::Json doc = sweep::outcomeArtifact({outcome});
    const sweep::Json &point =
        doc.at("experiments")[0].at("points")[0];
    ASSERT_TRUE(point.has("occupancy"));
    const sweep::Json &occ = point.at("occupancy");
    EXPECT_GT(occ.at("samples").asUInt(), 0u);
    EXPECT_GT(occ.at("buckets").size(), 0u);
    EXPECT_GE(occ.at("mean").asDouble(), 0.0);
}

} // namespace
} // namespace smt
