/**
 * @file
 * Tests for the workload substrate: profile table, program generation
 * (structural validity, determinism), the oracle (stream semantics,
 * loop behaviour, rewind support), and the mix rotation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/code_image.hh"
#include "workload/mix.hh"
#include "workload/oracle.hh"
#include "workload/profile.hh"

namespace smt
{
namespace
{

std::unique_ptr<CodeImage>
makeImage(Benchmark b, std::uint64_t seed = 1)
{
    return generateProgram(benchmarkProfile(b), seed,
                           AddressLayout::codeBase(0),
                           AddressLayout::dataBase(0),
                           AddressLayout::stackBase(0));
}

TEST(Profile, AllEightBenchmarksExist)
{
    EXPECT_EQ(allBenchmarks().size(), 8u);
    std::set<std::string> names;
    for (Benchmark b : allBenchmarks())
        names.insert(benchmarkProfile(b).name);
    EXPECT_EQ(names.size(), 8u);
    EXPECT_TRUE(names.count("alvinn"));
    EXPECT_TRUE(names.count("fpppp"));
    EXPECT_TRUE(names.count("xlisp"));
    EXPECT_TRUE(names.count("tex"));
}

TEST(Profile, LookupByName)
{
    EXPECT_EQ(benchmarkByName("tomcatv"), Benchmark::Tomcatv);
    EXPECT_EQ(benchmarkByName("espresso"), Benchmark::Espresso);
}

TEST(ProfileDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(benchmarkByName("gcc"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Profile, FpBenchmarksHaveFpMix)
{
    EXPECT_GT(benchmarkProfile(Benchmark::Fpppp).fpFrac, 0.2);
    EXPECT_GT(benchmarkProfile(Benchmark::Tomcatv).fpFrac, 0.2);
    EXPECT_DOUBLE_EQ(benchmarkProfile(Benchmark::Xlisp).fpFrac, 0.0);
    EXPECT_DOUBLE_EQ(benchmarkProfile(Benchmark::Espresso).fpFrac, 0.0);
}

class ImageTest : public ::testing::TestWithParam<Benchmark>
{
};

TEST_P(ImageTest, ControlTargetsStayInImage)
{
    auto image = makeImage(GetParam());
    ASSERT_GT(image->numInsts(), 100u);
    for (std::size_t i = 0; i < image->numInsts(); ++i) {
        const Addr pc = image->codeBase() + i * kInstBytes;
        const StaticInst *si = image->at(pc);
        ASSERT_NE(si, nullptr);
        if (si->op == OpClass::CondBranch || si->op == OpClass::Jump ||
            si->op == OpClass::Call) {
            EXPECT_TRUE(image->contains(si->target))
                << "direct target outside image at pc " << pc;
        }
        if (si->op == OpClass::IndirectJump) {
            const IndirectBehavior &ib = image->indirectBehavior(si->annot);
            EXPECT_FALSE(ib.targets.empty());
            for (Addr t : ib.targets)
                EXPECT_TRUE(image->contains(t));
        }
    }
}

TEST_P(ImageTest, AnnotationsAreValid)
{
    auto image = makeImage(GetParam());
    for (std::size_t i = 0; i < image->numInsts(); ++i) {
        const StaticInst *si =
            image->at(image->codeBase() + i * kInstBytes);
        if (si->isCondBranch()) {
            EXPECT_LT(si->annot, image->numBranchBehaviors());
        }
        if (si->isMemory()) {
            EXPECT_LT(si->annot, image->numMemBehaviors());
        }
    }
}

TEST_P(ImageTest, GenerationIsDeterministic)
{
    auto a = makeImage(GetParam(), 7);
    auto b = makeImage(GetParam(), 7);
    ASSERT_EQ(a->numInsts(), b->numInsts());
    EXPECT_EQ(a->entryPc(), b->entryPc());
    for (std::size_t i = 0; i < a->numInsts(); ++i) {
        const Addr pc = a->codeBase() + i * kInstBytes;
        const StaticInst *x = a->at(pc);
        const StaticInst *y = b->at(pc);
        ASSERT_EQ(x->op, y->op);
        ASSERT_EQ(x->target, y->target);
        ASSERT_EQ(x->annot, y->annot);
    }
}

TEST_P(ImageTest, DifferentSeedsGiveDifferentPrograms)
{
    auto a = makeImage(GetParam(), 1);
    auto b = makeImage(GetParam(), 2);
    bool differs = a->numInsts() != b->numInsts();
    if (!differs) {
        for (std::size_t i = 0; i < a->numInsts() && !differs; ++i) {
            const Addr pc = a->codeBase() + i * kInstBytes;
            differs = a->at(pc)->op != b->at(pc)->op;
        }
    }
    EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ImageTest, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<Benchmark> &info) {
        return std::string(benchmarkName(info.param));
    });

TEST(Image, OutsideLookupsReturnNull)
{
    auto image = makeImage(Benchmark::Espresso);
    EXPECT_EQ(image->at(image->codeBase() - 4), nullptr);
    EXPECT_EQ(image->at(image->codeBase() + image->codeBytes()), nullptr);
    EXPECT_FALSE(image->contains(image->codeBase() + 2)); // misaligned.
}

TEST(Oracle, StreamIsDeterministic)
{
    auto image = makeImage(Benchmark::Doduc);
    ThreadProgram a(*image, 99);
    ThreadProgram b(*image, 99);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const OracleEntry &x = a.entryAt(i);
        const OracleEntry &y = b.entryAt(i);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.nextPc, y.nextPc);
        ASSERT_EQ(x.memAddr, y.memAddr);
    }
}

TEST(Oracle, StreamFollowsControlFlow)
{
    auto image = makeImage(Benchmark::Tex);
    ThreadProgram p(*image, 5);
    EXPECT_EQ(p.entryAt(0).pc, image->entryPc());
    for (std::uint64_t i = 0; i + 1 < 20000; ++i) {
        const OracleEntry &e = p.entryAt(i);
        const OracleEntry &next = p.entryAt(i + 1);
        ASSERT_EQ(next.pc, e.nextPc) << "discontinuity at index " << i;
        if (!e.si->isControl()) {
            ASSERT_EQ(e.nextPc, e.pc + kInstBytes);
        } else if (!e.taken) {
            ASSERT_EQ(e.nextPc, e.pc + kInstBytes);
        }
    }
}

TEST(Oracle, TakenDirectBranchesGoToStaticTarget)
{
    auto image = makeImage(Benchmark::Alvinn);
    ThreadProgram p(*image, 5);
    unsigned checked = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
        const OracleEntry &e = p.entryAt(i);
        if (e.si->isCondBranch() && e.taken) {
            ASSERT_EQ(e.nextPc, e.si->target);
            ++checked;
        }
        if (e.si->op == OpClass::Jump || e.si->op == OpClass::Call) {
            ASSERT_TRUE(e.taken);
            ASSERT_EQ(e.nextPc, e.si->target);
        }
    }
    EXPECT_GT(checked, 0u);
}

TEST(Oracle, CallsAndReturnsBalance)
{
    auto image = makeImage(Benchmark::Xlisp);
    ThreadProgram p(*image, 5);
    std::vector<Addr> shadow;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const OracleEntry &e = p.entryAt(i);
        if (e.si->op == OpClass::Call) {
            shadow.push_back(e.pc + kInstBytes);
        } else if (e.si->op == OpClass::Return) {
            ASSERT_FALSE(shadow.empty());
            ASSERT_EQ(e.nextPc, shadow.back());
            shadow.pop_back();
        }
    }
}

TEST(Oracle, LoopTripsWithinProfileBounds)
{
    auto image = makeImage(Benchmark::Tomcatv);
    const BenchmarkProfile &prof = image->profile();
    ThreadProgram p(*image, 5);
    // Count consecutive taken executions per loop back-edge.
    std::map<std::uint32_t, std::uint64_t> run;
    for (std::uint64_t i = 0; i < 200000; ++i) {
        const OracleEntry &e = p.entryAt(i);
        if (!e.si->isCondBranch())
            continue;
        const BranchBehavior &bb = image->branchBehavior(e.si->annot);
        if (bb.kind != BranchBehavior::Kind::LoopBack)
            continue;
        if (e.taken) {
            ++run[e.si->annot];
        } else {
            // Trip count = taken run + 1 (the exit execution).
            const std::uint64_t trips = run[e.si->annot] + 1;
            EXPECT_GE(trips, prof.minTrip);
            EXPECT_LE(trips, prof.maxTrip);
            run[e.si->annot] = 0;
        }
    }
}

TEST(Oracle, MemAddressesLandInDataSegmentOrStack)
{
    auto image = makeImage(Benchmark::Espresso);
    ThreadProgram p(*image, 5);
    unsigned mem_ops = 0;
    for (std::uint64_t i = 0; i < 30000; ++i) {
        const OracleEntry &e = p.entryAt(i);
        if (!e.si->isMemory())
            continue;
        ++mem_ops;
        const bool in_data = e.memAddr >= image->dataBase() &&
                             e.memAddr < image->dataBase() + (64ull << 20);
        const bool in_stack = e.memAddr >= image->stackBase() &&
                              e.memAddr < image->stackBase() + 8192;
        EXPECT_TRUE(in_data || in_stack)
            << "address " << e.memAddr << " outside thread regions";
    }
    EXPECT_GT(mem_ops, 1000u);
}

TEST(Oracle, StridedStreamsAdvanceByStride)
{
    auto image = makeImage(Benchmark::Tomcatv);
    ThreadProgram p(*image, 5);
    std::map<std::uint32_t, Addr> last;
    unsigned checked = 0;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const OracleEntry &e = p.entryAt(i);
        if (!e.si->isMemory())
            continue;
        const MemBehavior &mb = image->memBehavior(e.si->annot);
        if (mb.kind != MemBehavior::Kind::Stride)
            continue;
        auto it = last.find(e.si->annot);
        if (it != last.end() && e.memAddr > it->second) {
            EXPECT_EQ(e.memAddr - it->second, mb.strideBytes);
            ++checked;
        }
        last[e.si->annot] = e.memAddr;
    }
    EXPECT_GT(checked, 100u);
}

TEST(Oracle, RetireBeforeReclaimsAndKeepsIndices)
{
    auto image = makeImage(Benchmark::Ora);
    ThreadProgram p(*image, 5);
    const OracleEntry e100 = p.entryAt(100); // copy.
    p.retireBefore(50);
    EXPECT_EQ(p.baseIndex(), 50u);
    // Index 100 still live and identical.
    const OracleEntry &again = p.entryAt(100);
    EXPECT_EQ(again.pc, e100.pc);
    EXPECT_EQ(again.nextPc, e100.nextPc);
}

TEST(Mix, RotationCoversAllBenchmarks)
{
    // Across the 8 runs, thread slot 0 must see all 8 benchmarks.
    std::set<Benchmark> seen;
    for (unsigned r = 0; r < kRunsPerDataPoint; ++r)
        seen.insert(mixForRun(4, r)[0]);
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Mix, MatchesPaperRotation)
{
    const auto mix = mixForRun(4, 2);
    ASSERT_EQ(mix.size(), 4u);
    const auto &all = allBenchmarks();
    EXPECT_EQ(mix[0], all[2]);
    EXPECT_EQ(mix[1], all[3]);
    EXPECT_EQ(mix[2], all[4]);
    EXPECT_EQ(mix[3], all[5]);
}

TEST(Mix, WrapsModuloEight)
{
    const auto mix = mixForRun(8, 5);
    const auto &all = allBenchmarks();
    EXPECT_EQ(mix[7], all[(5 + 7) % 8]);
}

} // namespace
} // namespace smt
