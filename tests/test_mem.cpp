/**
 * @file
 * Tests for the memory subsystem: banked cache behaviour (hits, misses,
 * LRU, bank/port conflicts, MSHR merging, writebacks), the TLBs, and
 * the assembled hierarchy's latency ordering and MISSCOUNT feedback.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"
#include "stats/stats.hh"

namespace smt
{
namespace
{

CacheParams
smallCache(const char *name, unsigned size_kb, unsigned assoc,
           unsigned banks)
{
    CacheParams p;
    p.name = name;
    p.sizeBytes = size_kb * 1024ull;
    p.assoc = assoc;
    p.lineBytes = 64;
    p.banks = banks;
    p.accessesPerCycle = 4;
    p.cyclesPerAccess = 1;
    p.transferCycles = 1;
    p.fillCycles = 2;
    p.latencyToNext = 6;
    return p;
}

TEST(Cache, MissThenHit)
{
    CacheStats stats;
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    const auto miss = c.access(0x1000, 100, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_GT(miss.ready, 100u);

    const auto hit = c.access(0x1000, miss.ready + 10, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.ready, miss.ready + 10);
    EXPECT_EQ(stats.accesses, 2u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(Cache, MissLatencyIncludesMemoryPath)
{
    CacheStats stats;
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    const auto miss = c.access(0x1000, 100, false);
    // latencyToNext (6) + memory (60) + transfer (1) = 67.
    EXPECT_EQ(miss.ready, 100u + 6 + 60 + 1);
}

TEST(Cache, SameLineDifferentWordsHit)
{
    CacheStats stats;
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    const auto miss = c.access(0x1000, 100, false);
    // +3: clear of the 2-cycle fill occupying the bank at miss.ready.
    const auto hit = c.access(0x1030, miss.ready + 3, false); // same line.
    EXPECT_TRUE(hit.hit);
}

TEST(Cache, MshrMergesOutstandingMisses)
{
    CacheStats stats;
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    const auto first = c.access(0x1000, 100, false);
    const auto merged = c.access(0x1008, 101, false); // same line, in flight.
    EXPECT_FALSE(merged.hit);
    EXPECT_EQ(merged.ready, first.ready); // rides the same fill.
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.mshrMerges, 1u);
}

TEST(Cache, DirectMappedConflictEvicts)
{
    CacheStats stats;
    // 32KB direct-mapped, 8 banks, 64B lines: the same (bank, set) is
    // re-used every 32KB of address space.
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    const auto a = c.access(0x0000, 100, false);
    (void)c.access(0x8000, a.ready + 10, false); // evicts the first line.
    const auto back = c.access(0x0000, a.ready + 200, false);
    EXPECT_FALSE(back.hit);
    EXPECT_EQ(stats.misses, 3u);
}

TEST(Cache, AssociativityAvoidsConflict)
{
    CacheStats stats;
    BankedCache c(smallCache("L2", 32, 4, 8), nullptr, 60, 4, true, false,
                  stats);
    Cycle t = 100;
    // Four lines in the same set of a 4-way cache: all must survive.
    for (unsigned i = 0; i < 4; ++i) {
        const auto r = c.access(0x0000 + i * 8 * 1024, t, false);
        t = r.ready + 2;
    }
    for (unsigned i = 0; i < 4; ++i) {
        const auto r = c.access(0x0000 + i * 8 * 1024, t, false);
        EXPECT_TRUE(r.hit) << "way " << i;
        ++t;
    }
}

TEST(Cache, LruVictimSelection)
{
    CacheStats stats;
    BankedCache c(smallCache("L2", 32, 2, 1), nullptr, 60, 4, true, false,
                  stats);
    // Two-way set; touch A, B, then A again; C must evict B.
    Cycle t = 100;
    t = c.access(0x0000, t, false).ready + 2; // A.
    t = c.access(0x4000, t, false).ready + 2; // B (same set: 16KB apart).
    t = c.access(0x0000, t, false).ready + 2; // A again (refresh LRU).
    t = c.access(0x8000, t, false).ready + 2; // C evicts B.
    EXPECT_TRUE(c.access(0x0000, t, false).hit);
    EXPECT_FALSE(c.access(0x4000, t + 1, false).hit);
}

TEST(Cache, BankConflictRejectedWhenCoreFacing)
{
    CacheStats stats;
    CacheParams p = smallCache("L1", 32, 1, 8);
    p.accessesPerCycle = 4;
    BankedCache c(p, nullptr, 60, 4, true, false, stats);
    // Warm two lines in the same bank (64B lines, 8 banks: same bank
    // every 512 bytes).
    Cycle t = 100;
    t = c.access(0x0000, t, false).ready + 2;
    t = c.access(0x0200, t, false).ready + 2;
    // Two same-cycle accesses to the same bank: second must be rejected.
    const auto first = c.access(0x0000, t, false);
    EXPECT_TRUE(first.hit);
    const auto second = c.access(0x0200, t, false);
    EXPECT_TRUE(second.conflict);
    EXPECT_EQ(stats.bankConflicts, 1u);
}

TEST(Cache, PortLimitRejectsExcessAccesses)
{
    CacheStats stats;
    CacheParams p = smallCache("L1", 32, 1, 8);
    p.accessesPerCycle = 2;
    BankedCache c(p, nullptr, 60, 4, true, false, stats);
    Cycle t = 100;
    // Warm three lines in three different banks.
    for (unsigned i = 0; i < 3; ++i)
        t = c.access(i * 64, t, false).ready + 2;
    // Same cycle: two fine, third rejected by the port limit.
    EXPECT_TRUE(c.access(0 * 64, t, false).hit);
    EXPECT_TRUE(c.access(1 * 64, t, false).hit);
    EXPECT_TRUE(c.access(2 * 64, t, false).conflict);
}

TEST(Cache, InfiniteBandwidthNeverConflicts)
{
    CacheStats stats;
    CacheParams p = smallCache("L1", 32, 1, 8);
    p.accessesPerCycle = 1;
    BankedCache c(p, nullptr, 60, 4, true, true, stats);
    Cycle t = 100;
    for (unsigned i = 0; i < 4; ++i)
        t = c.access(i * 0x200, t, false).ready + 2;
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_FALSE(c.access(i * 0x200, t, false).conflict);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    CacheStats stats;
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    Cycle t = 100;
    t = c.access(0x0000, t, true).ready + 2; // dirty the line.
    t = c.access(0x8000, t, false).ready + 2; // evict it.
    EXPECT_EQ(stats.writebacks, 1u);
}

TEST(Cache, TagProbeDoesNotDisturbState)
{
    CacheStats stats;
    BankedCache c(smallCache("L1", 32, 1, 8), nullptr, 60, 4, true, false,
                  stats);
    EXPECT_FALSE(c.wouldHit(0x1000));
    const auto miss = c.access(0x1000, 100, false);
    EXPECT_FALSE(c.wouldHit(0x1000)); // still outstanding in the MSHR.
    (void)c.access(0x1000, miss.ready + 3, false); // clears the MSHR entry.
    EXPECT_TRUE(c.wouldHit(0x1000));
    EXPECT_EQ(stats.accesses, 2u); // probes don't count.
}

TEST(Tlb, HitAfterFill)
{
    TlbStats stats;
    Tlb tlb(64, 8192, stats);
    EXPECT_FALSE(tlb.translate(0, 0x10000)); // cold miss (and fill).
    EXPECT_TRUE(tlb.translate(0, 0x10000));
    EXPECT_TRUE(tlb.translate(0, 0x10000 + 4096)); // same 8K page.
    EXPECT_FALSE(tlb.translate(0, 0x20000)); // different page.
    EXPECT_EQ(stats.accesses, 4u);
    EXPECT_EQ(stats.misses, 2u);
}

TEST(Tlb, EntriesAreThreadTagged)
{
    TlbStats stats;
    Tlb tlb(64, 8192, stats);
    (void)tlb.translate(0, 0x10000);
    EXPECT_FALSE(tlb.translate(1, 0x10000)); // other thread misses.
}

TEST(Tlb, LruCapacityEviction)
{
    TlbStats stats;
    Tlb tlb(4, 8192, stats);
    for (Addr p = 0; p < 5; ++p)
        (void)tlb.translate(0, p * 8192);
    EXPECT_FALSE(tlb.translate(0, 0)); // evicted.
    EXPECT_TRUE(tlb.translate(0, 4 * 8192)); // recent survives.
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : mem_(cfg_, stats_) {}

    SmtConfig cfg_;
    SimStats stats_;
    MemoryHierarchy mem_{cfg_, stats_};
};

TEST_F(HierarchyTest, ColdFetchMissesThroughAllLevels)
{
    const auto r = mem_.fetchAccess(0, 0x10000000, 1000);
    EXPECT_FALSE(r.l1Hit);
    // Must traverse L2 and L3 to memory: at least 6+12+62 cycles.
    EXPECT_GE(r.ready, 1000u + 80);
    EXPECT_EQ(stats_.icache.misses, 1u);
    EXPECT_EQ(stats_.l2.misses, 1u);
    EXPECT_EQ(stats_.l3.misses, 1u);
}

TEST_F(HierarchyTest, WarmFetchHitsAtL1)
{
    const auto miss = mem_.fetchAccess(0, 0x10000000, 1000);
    const auto hit = mem_.fetchAccess(0, 0x10000000, miss.ready + 1);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.ready, miss.ready + 1);
}

TEST_F(HierarchyTest, L2HitIsFasterThanMemory)
{
    // Fill a line, evict it from L1 only (L1 is 32KB DM), re-access:
    // should come back from L2 quickly.
    const auto a = mem_.dataAccess(0, 0x0000, false, 1000);
    Cycle t = a.ready + 10;
    const auto evict = mem_.dataAccess(0, 0x8000, false, t); // same L1 set.
    t = evict.ready + 10;
    const auto from_l2 = mem_.dataAccess(0, 0x0000, false, t);
    EXPECT_FALSE(from_l2.l1Hit);
    EXPECT_LT(from_l2.ready - t, 40u); // L2-ish latency, not ~80+.
    EXPECT_GT(from_l2.ready - t, 4u);
}

TEST_F(HierarchyTest, TlbMissAddsTwoMemoryAccesses)
{
    EXPECT_EQ(mem_.tlbMissPenalty(), 2u * (6 + 12 + 62));
    const auto r = mem_.dataAccess(0, 0x20000000, false, 1000);
    // Cold DTLB + cold caches: penalty plus the full miss path.
    EXPECT_GE(r.ready, 1000u + mem_.tlbMissPenalty());
    EXPECT_EQ(stats_.dtlb.misses, 1u);
}

TEST_F(HierarchyTest, OutstandingMissesTrackPerThread)
{
    EXPECT_EQ(mem_.outstandingDMisses(0, 1000), 0u);
    const auto r = mem_.dataAccess(0, 0x30000000, false, 1000);
    EXPECT_EQ(mem_.outstandingDMisses(0, 1001), 1u);
    EXPECT_EQ(mem_.outstandingDMisses(1, 1001), 0u);
    EXPECT_EQ(mem_.outstandingDMisses(0, r.ready + 1), 0u);
}

TEST_F(HierarchyTest, StoresDoNotCountAsOutstandingLoads)
{
    (void)mem_.dataAccess(0, 0x40000000, true, 1000);
    EXPECT_EQ(mem_.outstandingDMisses(0, 1001), 0u);
}

TEST_F(HierarchyTest, IcacheBankMapping)
{
    EXPECT_EQ(mem_.icacheBank(0), 0u);
    EXPECT_EQ(mem_.icacheBank(64), 1u);
    EXPECT_EQ(mem_.icacheBank(64 * 8), 0u);
}

} // namespace
} // namespace smt
