/**
 * @file
 * Stall-accounting invariants: the per-cause counters added for the
 * observability work must form a closed ledger, not an approximation.
 * For every registered policy pair (under both the specialized and the
 * generic core engine):
 *
 *  - fetch dispositions partition time: per thread, the five fetch
 *    outcome counters sum exactly to the run's cycle count (exactly
 *    one disposition is recorded per thread per cycle);
 *  - the human stall report's grand total equals totalStalledSlots();
 *  - the specialized and generic engines agree on every stall counter
 *    (cycle identity extends to the new accounting).
 *
 * An ideal machine (single thread, no misses, infinite FUs/registers/
 * bandwidth, perfect prediction) zeroes every *machine-loss* cause;
 * what remains is intrinsic to the workload's data dependences.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace smt
{
namespace
{

struct PolicyPair
{
    const char *fetch;
    const char *issue;
};

/** Every (fetch, issue) pair the paper registers an engine for (kept
 *  in sync with test_engine.cpp's registry assertions). */
constexpr PolicyPair kRegisteredPairs[] = {
    {"RR", "OLDEST_FIRST"},
    {"BRCOUNT", "OLDEST_FIRST"},
    {"MISSCOUNT", "OLDEST_FIRST"},
    {"ICOUNT", "OLDEST_FIRST"},
    {"IQPOSN", "OLDEST_FIRST"},
    {"ICOUNT+MISSCOUNT", "OLDEST_FIRST"},
    {"ICOUNT", "OPT_LAST"},
    {"ICOUNT", "SPEC_LAST"},
    {"ICOUNT", "BRANCH_FIRST"},
};

void
checkLedger(const SimStats &stats, unsigned threads,
            const std::string &what)
{
    const StallStats &sl = stats.stalls;

    // Fetch dispositions partition the cycles, thread by thread.
    for (unsigned t = 0; t < threads; ++t) {
        const std::uint64_t partition =
            sl.fetchActive[t] + sl.fetchIcacheMiss[t]
            + sl.fetchFrontEndFull[t] + sl.fetchNoTarget[t]
            + sl.fetchLostSelection[t];
        EXPECT_EQ(partition, stats.cycles)
            << what << ": fetch outcomes of thread " << t
            << " do not partition the cycles";
    }
    // Unused contexts must stay untouched.
    for (unsigned t = threads; t < kMaxThreads; ++t) {
        EXPECT_EQ(sl.fetchActive[t] + sl.fetchStalled(t)
                      + sl.renameIQFull[t] + sl.renameNoRegisters[t]
                      + sl.issueOperandWait[t] + sl.issueFuBusy[t],
                  0u)
            << what << ": unused thread slot " << t << " has counts";
    }

    // The per-cause sum *is* the total — nothing uncounted, nothing
    // double-counted.
    std::uint64_t sum = sl.issueNoCandidatesCycles;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        sum += sl.fetchStalled(t) + sl.renameIQFull[t]
               + sl.renameNoRegisters[t] + sl.issueOperandWait[t]
               + sl.issueFuBusy[t];
    EXPECT_EQ(sum, sl.totalStalledSlots()) << what;

    // The human report must account for exactly the same grand total.
    const std::string report = stats.stallReport(threads);
    const std::string total_line = "total stalled slots";
    const std::size_t pos = report.find(total_line);
    ASSERT_NE(pos, std::string::npos) << what;
    EXPECT_NE(report.find(std::to_string(sl.totalStalledSlots()), pos),
              std::string::npos)
        << what << ": report total differs from totalStalledSlots()\n"
        << report;
}

bool
stallStatsEqual(const StallStats &a, const StallStats &b)
{
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        if (a.fetchActive[t] != b.fetchActive[t]
            || a.fetchIcacheMiss[t] != b.fetchIcacheMiss[t]
            || a.fetchFrontEndFull[t] != b.fetchFrontEndFull[t]
            || a.fetchNoTarget[t] != b.fetchNoTarget[t]
            || a.fetchLostSelection[t] != b.fetchLostSelection[t]
            || a.renameIQFull[t] != b.renameIQFull[t]
            || a.renameNoRegisters[t] != b.renameNoRegisters[t]
            || a.issueOperandWait[t] != b.issueOperandWait[t]
            || a.issueFuBusy[t] != b.issueFuBusy[t])
            return false;
    }
    return a.issueNoCandidatesCycles == b.issueNoCandidatesCycles;
}

TEST(StallAccounting, LedgerClosesForEveryPairUnderBothEngines)
{
    for (const PolicyPair &pair : kRegisteredPairs) {
        SmtConfig cfg = presets::baseSmt(4);
        cfg.fetchPolicyName = pair.fetch;
        cfg.issuePolicyName = pair.issue;
        const std::string what =
            std::string(pair.fetch) + "." + pair.issue;

        Simulator spec(cfg, mixForRun(4, 0), 0, CoreDispatch::Auto);
        Simulator gen(cfg, mixForRun(4, 0), 0,
                      CoreDispatch::ForceGeneric);
        spec.run(6000);
        gen.run(6000);

        checkLedger(spec.stats(), 4, what + " (specialized)");
        checkLedger(gen.stats(), 4, what + " (generic)");
        EXPECT_TRUE(stallStatsEqual(spec.stats().stalls,
                                    gen.stats().stalls))
            << "stall accounting diverged between engines for " << what;
    }
}

TEST(StallAccounting, WarmupResetsTheLedgerInLockstepWithCycles)
{
    SmtConfig cfg = presets::icount28(2);
    Simulator sim(cfg, mixForRun(2, 0), 0);
    sim.warmup(3000);
    sim.run(4000);
    // The partition invariant can only hold post-warmup if the stall
    // counters were cleared together with the cycle counter.
    checkLedger(sim.stats(), 2, "after warmup");
}

TEST(StallAccounting, IdealMachineZeroesEveryMachineLossCause)
{
    // Single thread, caches far larger than the footprint, perfect
    // branch prediction, infinite functional units and bandwidth,
    // effectively unbounded registers and queues: every stall cause
    // attributable to the *machine* must read zero. What remains
    // (operand waits, queue backpressure) is the workload's own
    // dependence structure, which no machine resource removes.
    SmtConfig cfg = presets::baseSmt(1);
    cfg.perfectBranchPrediction = true;
    cfg.infiniteFunctionalUnits = true;
    cfg.infiniteCacheBandwidth = true;
    cfg.icache.sizeBytes = 8 * 1024 * 1024;
    cfg.icache.assoc = 8;
    cfg.dcache.sizeBytes = 8 * 1024 * 1024;
    cfg.dcache.assoc = 8;
    cfg.l2.sizeBytes = 32 * 1024 * 1024;
    cfg.excessRegisters = 4000;
    cfg.intQueueEntries = 256;
    cfg.fpQueueEntries = 256;
    cfg.iqSearchWindow = 256;
    cfg.itlbEntries = 4096;
    cfg.dtlbEntries = 4096;

    Simulator sim(cfg, mixForRun(1, 0), 0);
    sim.warmup(30000); // long enough to touch every code page.
    sim.run(6000);

    const StallStats &sl = sim.stats().stalls;
    EXPECT_EQ(sl.fetchIcacheMiss[0], 0u);
    EXPECT_EQ(sl.fetchNoTarget[0], 0u);       // perfect prediction.
    EXPECT_EQ(sl.fetchLostSelection[0], 0u);  // nobody to lose to.
    EXPECT_EQ(sl.renameNoRegisters[0], 0u);
    EXPECT_EQ(sl.issueFuBusy[0], 0u);
    EXPECT_EQ(sl.issueNoCandidatesCycles, 0u);
    // The machine still made progress, and the ledger still closes.
    EXPECT_GT(sl.fetchActive[0], 0u);
    checkLedger(sim.stats(), 1, "ideal machine");
}

} // namespace
} // namespace smt
