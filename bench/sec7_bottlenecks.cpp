/**
 * @file
 * Section 7 bottleneck probes on the improved machine (ICOUNT.2.8, 8
 * threads): infinite functional units, 64-entry fully searchable queues,
 * 2.16 fetch, 2.16 + bigger queues + 140 excess registers, and infinite
 * cache bandwidth.
 *
 * Paper: infinite FUs +0.5%; IQ-64 <+1%; fetch 2.16 +8% (5.7 IPC);
 * +IQ64+140regs another +7% (6.1 IPC); infinite cache bandwidth +3%.
 *
 * Probes run through sweep::runPoints(), so they share the scheduler
 * and the result cache with every other experiment.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sweep/runner.hh"

int
main()
{
    const smt::SmtConfig base_cfg = smt::presets::icount28(8);

    struct Probe
    {
        const char *label;
        const char *paper;
        smt::SmtConfig cfg;
    };
    std::vector<Probe> probes;

    {
        smt::SmtConfig cfg = base_cfg;
        cfg.infiniteFunctionalUnits = true;
        probes.push_back({"infinite functional units", "+0.5%", cfg});
    }
    {
        smt::SmtConfig cfg = base_cfg;
        cfg.intQueueEntries = 64;
        cfg.fpQueueEntries = 64;
        cfg.iqSearchWindow = 64; // fully searchable, unlike BIGQ.
        probes.push_back({"64-entry searchable queues", "<+1%", cfg});
    }
    {
        smt::SmtConfig cfg = base_cfg;
        cfg.fetchWidth = 16;
        smt::presets::setFetchPartition(cfg, 2, 8);
        probes.push_back({"fetch 2.16 (16-wide)", "+8% -> 5.7 IPC", cfg});
    }
    {
        smt::SmtConfig cfg = base_cfg;
        cfg.fetchWidth = 16;
        smt::presets::setFetchPartition(cfg, 2, 8);
        cfg.intQueueEntries = 64;
        cfg.fpQueueEntries = 64;
        cfg.iqSearchWindow = 64;
        cfg.excessRegisters = 140;
        probes.push_back(
            {"2.16 + IQ64 + 140 excess regs", "+15% -> 6.1 IPC", cfg});
    }
    {
        smt::SmtConfig cfg = base_cfg;
        cfg.infiniteCacheBandwidth = true;
        probes.push_back({"infinite cache bandwidth", "+3%", cfg});
    }

    const smt::sweep::RunnerOptions ropts =
        smt::sweep::defaultRunnerOptions();
    std::vector<smt::sweep::SweepPoint> points;
    const auto add_point = [&](const char *label,
                               const smt::SmtConfig &cfg) {
        smt::sweep::SweepPoint p;
        p.label = label;
        p.threads = cfg.numThreads;
        p.config = cfg;
        p.options = ropts.measure;
        points.push_back(std::move(p));
    };
    add_point("ICOUNT.2.8 base", base_cfg);
    for (const Probe &probe : probes)
        add_point(probe.label, probe.cfg);

    const std::vector<smt::sweep::PointResult> results =
        smt::sweep::runPoints(points, ropts);
    const smt::DataPoint &base = results[0].data;

    smt::Table table("Section 7: bottleneck probes (ICOUNT.2.8, 8T)");
    table.setHeader({"configuration", "IPC", "vs base", "paper"});
    table.addRow({"ICOUNT.2.8 base", smt::fmtDouble(base.ipc(), 2), "-",
                  "5.3 IPC"});
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const smt::DataPoint &d = results[i + 1].data;
        char delta[32];
        std::snprintf(delta, sizeof delta, "%+.1f%%",
                      100.0 * (d.ipc() / base.ipc() - 1.0));
        table.addRow({probes[i].label, smt::fmtDouble(d.ipc(), 2), delta,
                      probes[i].paper});
    }

    std::printf("%s\n", table.render().c_str());
    smt::printPaperNote(
        "Sec 7 shape: issue bandwidth, IQ size, and memory bandwidth are "
        "non-bottlenecks; fetch bandwidth is the remaining lever");
    return 0;
}
