/**
 * @file
 * Table 4: how ICOUNT relieves pressure vs round-robin (2.8 fetch
 * partitioning, 8 threads, with the 1-thread column for reference):
 * IQ-full fractions, average queue population, out-of-registers cycles.
 *
 * Paper: RR.2.8@8T -> 18%/8% IQ-full, 38 avg population, 8% out-of-regs;
 * ICOUNT.2.8@8T -> 6%/1%, 30, 5%; 1 thread -> 7%/14%, 25, 3%.
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    smt::SmtConfig one = smt::presets::baseSmt(1);
    smt::presets::setFetchPartition(one, 2, 8);

    smt::SmtConfig rr8 = smt::presets::baseSmt(8);
    smt::presets::setFetchPartition(rr8, 2, 8);

    const smt::SmtConfig icount8 = smt::presets::icount28(8);

    const smt::DataPoint p1 = smt::measure(one, opts);
    const smt::DataPoint prr = smt::measure(rr8, opts);
    const smt::DataPoint pic = smt::measure(icount8, opts);

    smt::Table table(
        "Table 4: RR vs ICOUNT low-level metrics (2.8 partitioning)");
    table.setHeader({"metric", "1 thread", "RR @8T", "ICOUNT @8T",
                     "paper (1T / RR8 / IC8)"});

    auto row = [&](const char *name, auto metric, const char *paper) {
        table.addRow({name, metric(p1.stats), metric(prr.stats),
                      metric(pic.stats), paper});
    };

    row("integer IQ-full (% cycles)",
        [](const smt::SimStats &s) {
            return smt::fmtPercent(s.intIQFullFraction());
        },
        "7% / 18% / 6%");
    row("fp IQ-full (% cycles)",
        [](const smt::SimStats &s) {
            return smt::fmtPercent(s.fpIQFullFraction());
        },
        "14% / 8% / 1%");
    row("avg queue population",
        [](const smt::SimStats &s) {
            return smt::fmtDouble(s.avgQueuePopulation(), 1);
        },
        "25 / 38 / 30");
    row("out-of-registers (% cycles)",
        [](const smt::SimStats &s) {
            return smt::fmtPercent(s.outOfRegistersFraction());
        },
        "3% / 8% / 5%");
    row("IPC",
        [](const smt::SimStats &s) { return smt::fmtDouble(s.ipc(), 2); },
        "- / 4.2 / 5.3");

    std::printf("%s\n", table.render().c_str());
    smt::printPaperNote(
        "Table 4 shape: ICOUNT sharply reduces IQ-full conditions and "
        "queue population relative to RR at 8 threads — less pressure "
        "with 8 threads than with 1");
    return 0;
}
