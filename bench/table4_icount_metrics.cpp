/**
 * @file
 * Table 4: how ICOUNT relieves pressure vs round-robin (2.8 fetch
 * partitioning, 8 threads, with the 1-thread column for reference):
 * IQ-full fractions, average queue population, out-of-registers cycles.
 *
 * Paper: RR.2.8@8T -> 18%/8% IQ-full, 38 avg population, 8% out-of-regs;
 * ICOUNT.2.8@8T -> 6%/1%, 30, 5%; 1 thread -> 7%/14%, 25, 3%.
 *
 * Grid and report live in the sweep engine (experiment "table4").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("table4");
}
