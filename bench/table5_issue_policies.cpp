/**
 * @file
 * Table 5: issue priority policies under ICOUNT.2.8 — OLDEST_FIRST,
 * OPT_LAST, SPEC_LAST, BRANCH_FIRST — IPC at 1..8 threads plus the
 * useless-issue breakdown (wrong-path and squashed-optimistic issue
 * slots) at 8 threads.
 *
 * Paper: all policies within a hair (5.28-5.29 at 8T); useless issue =
 * 4% wrong-path + 3% optimistic for OLDEST; OPT_LAST trims optimistic
 * waste to 2%; BRANCH_FIRST inflates it to 6%.
 */

#include <cstdio>

#include "policy/registry.hh"
#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();
    const std::vector<unsigned> counts = {1, 2, 4, 6, 8};

    // The paper's four policies, resolved by registry name.
    const std::vector<std::string> policies = {
        "OLDEST_FIRST", "OPT_LAST", "SPEC_LAST", "BRANCH_FIRST",
    };

    smt::Table table("Table 5: issue priority schemes (ICOUNT.2.8)");
    table.setHeader({"policy", "1T", "2T", "4T", "6T", "8T",
                     "wrong-path", "optimistic"});

    for (const std::string &p : policies) {
        std::vector<std::string> row = {p};
        smt::DataPoint last;
        for (unsigned t : counts) {
            smt::SmtConfig cfg = smt::presets::icount28(t);
            cfg.issuePolicyName = p;
            last = smt::measure(cfg, opts);
            row.push_back(smt::fmtDouble(last.ipc(), 2));
        }
        row.push_back(
            smt::fmtPercent(last.stats.wrongPathIssuedFraction()));
        row.push_back(
            smt::fmtPercent(last.stats.optimisticSquashFraction()));
        table.addRow(std::move(row));
    }

    std::printf("%s\n", table.render().c_str());
    smt::printPaperNote(
        "Table 5 shape: issue bandwidth is not a bottleneck — all four "
        "policies produce nearly identical throughput; useless issue "
        "stays in single digits (paper: 4% wrong-path + 3% optimistic)");
    return 0;
}
