/**
 * @file
 * Table 5: issue priority policies under ICOUNT.2.8 — OLDEST_FIRST,
 * OPT_LAST, SPEC_LAST, BRANCH_FIRST — IPC at 1..8 threads plus the
 * useless-issue breakdown (wrong-path and squashed-optimistic issue
 * slots) at 8 threads.
 *
 * Paper: all policies within a hair (5.28-5.29 at 8T); useless issue =
 * 4% wrong-path + 3% optimistic for OLDEST; OPT_LAST trims optimistic
 * waste to 2%; BRANCH_FIRST inflates it to 6%.
 *
 * Grid and report live in the sweep engine (experiment "table5").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("table5");
}
