/**
 * @file
 * Raw simulator performance (google-benchmark): simulated cycles per
 * wall-clock second for representative machine shapes. Useful when
 * changing hot pipeline code paths.
 *
 * Beyond the BM_* microbenchmarks, `--simspeed_out=PATH` also writes
 * the same "smt-simspeed-v1" BENCH_simspeed.json artifact as
 * `smtsweep --bench-simspeed` (both front ends share
 * src/sim/simspeed.*); scripts/check-simspeed.sh gates on it.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "sim/simspeed.hh"
#include "sim/simulator.hh"
#include "sweep/runner.hh"
#include "workload/mix.hh"

namespace
{

void
BM_TickThroughput(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    smt::SmtConfig cfg = smt::presets::icount28(threads);
    smt::Simulator sim(cfg, smt::mixForRun(threads, 0));
    sim.run(2000); // warm the machine.
    for (auto _ : state) {
        sim.run(1000);
        benchmark::DoNotOptimize(sim.stats().committedInstructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
    state.counters["IPC"] = sim.stats().ipc();
}

/** The same machine through the virtual-dispatch engine: the spread
 *  against BM_TickThroughput is the devirtualization win. */
void
BM_TickThroughputGeneric(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    smt::SmtConfig cfg = smt::presets::icount28(threads);
    smt::Simulator sim(cfg, smt::mixForRun(threads, 0), /*seed_salt=*/0,
                       smt::CoreDispatch::ForceGeneric);
    sim.run(2000);
    for (auto _ : state) {
        sim.run(1000);
        benchmark::DoNotOptimize(sim.stats().committedInstructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
    state.counters["IPC"] = sim.stats().ipc();
}

/** RR.1.8 base machine (round-robin fetch, Section 4). */
void
BM_TickThroughputRr(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    smt::SmtConfig cfg = smt::presets::baseSmt(threads);
    smt::Simulator sim(cfg, smt::mixForRun(threads, 0));
    sim.run(2000);
    for (auto _ : state) {
        sim.run(1000);
        benchmark::DoNotOptimize(sim.stats().committedInstructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
    state.counters["IPC"] = sim.stats().ipc();
}

void
BM_ProgramGeneration(benchmark::State &state)
{
    const auto bench = smt::allBenchmarks()[static_cast<std::size_t>(
        state.range(0))];
    std::uint64_t seed = 1;
    for (auto _ : state) {
        auto image = smt::generateProgram(
            smt::benchmarkProfile(bench), seed++,
            smt::AddressLayout::codeBase(0), smt::AddressLayout::dataBase(0),
            smt::AddressLayout::stackBase(0));
        benchmark::DoNotOptimize(image->numInsts());
    }
}

} // namespace

BENCHMARK(BM_TickThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TickThroughputGeneric)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TickThroughputRr)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProgramGeneration)->Arg(0)->Arg(3)->Arg(6);

int
main(int argc, char **argv)
{
    // Strip our flag before google-benchmark sees (and rejects) it.
    std::string simspeed_out;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        constexpr const char *kFlag = "--simspeed_out=";
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
            simspeed_out = argv[i] + std::strlen(kFlag);
        else
            args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!simspeed_out.empty()) {
        const smt::simspeed::Options opts;
        const auto results = smt::simspeed::measureAll(
            smt::simspeed::defaultShapes(), opts);
        std::fputs(smt::simspeed::formatTable(results).c_str(), stdout);
        smt::sweep::writeJsonFile(simspeed_out,
                                  smt::simspeed::toJson(results, opts));
        std::printf("wrote %s\n", simspeed_out.c_str());
    }
    return 0;
}
