/**
 * @file
 * Raw simulator performance (google-benchmark): simulated cycles per
 * wall-clock second for representative machine shapes. Useful when
 * changing hot pipeline code paths.
 */

#include <benchmark/benchmark.h>

#include "sim/simulator.hh"
#include "workload/mix.hh"

namespace
{

void
BM_TickThroughput(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    smt::SmtConfig cfg = smt::presets::icount28(threads);
    smt::Simulator sim(cfg, smt::mixForRun(threads, 0));
    sim.run(2000); // warm the machine.
    for (auto _ : state) {
        sim.run(1000);
        benchmark::DoNotOptimize(sim.stats().committedInstructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
    state.counters["IPC"] = sim.stats().ipc();
}

void
BM_ProgramGeneration(benchmark::State &state)
{
    const auto bench = smt::allBenchmarks()[static_cast<std::size_t>(
        state.range(0))];
    std::uint64_t seed = 1;
    for (auto _ : state) {
        auto image = smt::generateProgram(
            smt::benchmarkProfile(bench), seed++,
            smt::AddressLayout::codeBase(0), smt::AddressLayout::dataBase(0),
            smt::AddressLayout::stackBase(0));
        benchmark::DoNotOptimize(image->numInsts());
    }
}

} // namespace

BENCHMARK(BM_TickThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProgramGeneration)->Arg(0)->Arg(3)->Arg(6);

BENCHMARK_MAIN();
