/**
 * @file
 * Figure 5: fetch thread-priority policies — BRCOUNT, MISSCOUNT,
 * ICOUNT, IQPOSN vs round-robin — under both the 1.8 and 2.8 fetch
 * partitionings, across thread counts.
 *
 * Paper shape: all heuristics beat RR; BRCOUNT and MISSCOUNT give
 * moderate gains only with many threads; ICOUNT wins everywhere (up to
 * +23% over the best RR result); IQPOSN tracks ICOUNT within 4%.
 */

#include <cstdio>

#include "policy/registry.hh"
#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();
    const std::vector<unsigned> counts = {2, 4, 6, 8};

    // The paper's five policies, resolved by registry name (RR first:
    // the sweeps below report gains relative to sweeps[0]).
    const std::vector<std::string> policies = {
        "RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN",
    };

    for (unsigned width_threads : {1u, 2u}) {
        std::vector<smt::ThreadSweep> sweeps;
        for (const std::string &p : policies) {
            const std::string label =
                p + "." + std::to_string(width_threads) + ".8";
            sweeps.push_back(smt::sweepThreads(
                label, counts,
                [&](unsigned t) {
                    smt::SmtConfig cfg = smt::presets::baseSmt(t);
                    cfg.fetchPolicyName = p;
                    smt::presets::setFetchPartition(cfg, width_threads, 8);
                    return cfg;
                },
                opts));
        }
        smt::Table table = smt::ipcTable(
            "Figure 5: fetch priority policies, " +
                std::to_string(width_threads) + ".8 partitioning (IPC)",
            sweeps);
        std::printf("%s\n", table.render().c_str());

        const double rr8 = sweeps[0].ipcAt(8);
        for (std::size_t i = 1; i < sweeps.size(); ++i) {
            std::printf("  %s vs RR at 8T: %+.1f%%\n",
                        sweeps[i].label.c_str(),
                        100.0 * (sweeps[i].ipcAt(8) / rr8 - 1.0));
        }
        std::printf("\n");
    }

    smt::printPaperNote(
        "Fig 5 shape: ICOUNT best at every thread count (peak 5.3 IPC at "
        "ICOUNT.2.8); IQPOSN within 4% of ICOUNT; BRCOUNT/MISSCOUNT help "
        "mainly when saturated");
    return 0;
}
