/**
 * @file
 * Figure 5: fetch thread-priority policies — BRCOUNT, MISSCOUNT,
 * ICOUNT, IQPOSN vs round-robin — under both the 1.8 and 2.8 fetch
 * partitionings, across thread counts.
 *
 * Paper shape: all heuristics beat RR; BRCOUNT and MISSCOUNT give
 * moderate gains only with many threads; ICOUNT wins everywhere (up to
 * +23% over the best RR result); IQPOSN tracks ICOUNT within 4%.
 *
 * The grid itself is declared in the sweep engine (src/sweep/
 * experiments.cc, experiment "fig5"); this binary, and `smtsweep
 * --experiment fig5`, both run and print it through the engine.
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("fig5");
}
