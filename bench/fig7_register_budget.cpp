/**
 * @file
 * Figure 7: throughput with a fixed 200-register file (per register
 * file) as the number of hardware contexts varies from 1 to 5 — more
 * contexts mean fewer renaming registers (200 - 32*T).
 *
 * Paper shape: rising curve with a clear maximum at 4 contexts.
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    smt::Table table(
        "Figure 7: 200 physical registers per file, 1-5 contexts");
    table.setHeader({"contexts", "excess regs", "IPC", "out-of-regs"});

    unsigned best_t = 0;
    double best_ipc = 0.0;
    for (unsigned t = 1; t <= 5; ++t) {
        smt::SmtConfig cfg = smt::presets::icount28(t);
        cfg.totalPhysRegisters = 200;
        const smt::DataPoint d = smt::measure(cfg, opts);
        table.addRow({std::to_string(t), std::to_string(200 - 32 * t),
                      smt::fmtDouble(d.ipc(), 2),
                      smt::fmtPercent(d.stats.outOfRegistersFraction())});
        if (d.ipc() > best_ipc) {
            best_ipc = d.ipc();
            best_t = t;
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("maximum at %u contexts (paper: clear maximum at 4)\n",
                best_t);
    smt::printPaperNote(
        "Fig 7 shape: throughput rises with contexts until the renaming "
        "register shortage bites; peak at 4 contexts with 200 registers");
    return 0;
}
