/**
 * @file
 * Figure 7: throughput with a fixed 200-register file (per register
 * file) as the number of hardware contexts varies from 1 to 5 — more
 * contexts mean fewer renaming registers (200 - 32*T).
 *
 * Paper shape: rising curve with a clear maximum at 4 contexts.
 *
 * Grid and report live in the sweep engine (experiment "fig7").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("fig7");
}
