/**
 * @file
 * Figure 3: instruction throughput of the base SMT architecture
 * (RR.1.8) from 1 to 8 threads, against the unmodified superscalar.
 *
 * Paper reference points: superscalar ~2.1 IPC; SMT single-thread within
 * 2% of the superscalar; peak ~3.9 IPC (84% over the superscalar),
 * flattening before 8 threads.
 *
 * Grid and report live in the sweep engine (experiment "fig3").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("fig3");
}
