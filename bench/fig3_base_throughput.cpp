/**
 * @file
 * Figure 3: instruction throughput of the base SMT architecture
 * (RR.1.8) from 1 to 8 threads, against the unmodified superscalar.
 *
 * Paper reference points: superscalar ~2.1 IPC; SMT single-thread within
 * 2% of the superscalar; peak ~3.9 IPC (84% over the superscalar),
 * flattening before 8 threads.
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    const smt::ThreadSweep base = smt::sweepThreads(
        "SMT RR.1.8", smt::paperThreadCounts(),
        [](unsigned t) { return smt::presets::baseSmt(t); }, opts);

    const smt::DataPoint superscalar =
        smt::measure(smt::presets::unmodifiedSuperscalar(), opts);

    smt::Table table("Figure 3: base hardware throughput (IPC)");
    table.setHeader({"machine", "1T", "2T", "4T", "6T", "8T"});
    {
        std::vector<std::string> row = {"SMT RR.1.8"};
        for (const smt::DataPoint &p : base.points)
            row.push_back(smt::fmtDouble(p.ipc(), 2));
        table.addRow(std::move(row));
    }
    table.addRow({"unmodified superscalar",
                  smt::fmtDouble(superscalar.ipc(), 2), "-", "-", "-",
                  "-"});
    std::printf("%s\n", table.render().c_str());

    const double ss = superscalar.ipc();
    const double single = base.ipcAt(1);
    const double peak = base.peakIpc();
    std::printf("single-thread SMT vs superscalar: %+.1f%%  "
                "(paper: less than -2%%)\n",
                100.0 * (single / ss - 1.0));
    std::printf("peak SMT speedup over superscalar: %.2fx  "
                "(paper: 1.84x)\n", peak / ss);
    smt::printPaperNote(
        "Fig 3 shape: near-identical at 1 thread, rising throughput that "
        "flattens before 8 threads, peak ~1.8x the superscalar");
    return 0;
}
