/**
 * @file
 * Figure 4: fetch-partitioning schemes under round-robin priority —
 * RR.1.8, RR.2.4, RR.4.2, RR.2.8 — across thread counts.
 *
 * Paper shape: RR.2.4 beats RR.1.8 by ~9% at 8 threads but loses below
 * 4 threads; RR.4.2 suffers thread shortage and never catches the
 * 2-thread schemes; RR.2.8 matches RR.1.8 at few threads and RR.2.4 at
 * many (~+10% peak).
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    struct Scheme
    {
        const char *label;
        unsigned threads_per_cycle;
        unsigned width;
    };
    const Scheme schemes[] = {
        {"RR.1.8", 1, 8},
        {"RR.2.4", 2, 4},
        {"RR.4.2", 4, 2},
        {"RR.2.8", 2, 8},
    };

    std::vector<smt::ThreadSweep> sweeps;
    for (const Scheme &s : schemes) {
        sweeps.push_back(smt::sweepThreads(
            s.label, smt::paperThreadCounts(),
            [&s](unsigned t) {
                smt::SmtConfig cfg = smt::presets::baseSmt(t);
                smt::presets::setFetchPartition(cfg, s.threads_per_cycle,
                                                s.width);
                return cfg;
            },
            opts));
    }

    smt::Table table =
        smt::ipcTable("Figure 4: fetch partitioning (IPC)", sweeps);
    std::printf("%s\n", table.render().c_str());

    const double rr18 = sweeps[0].ipcAt(8);
    std::printf("at 8 threads vs RR.1.8: RR.2.4 %+.1f%% (paper +9%%), "
                "RR.4.2 %+.1f%%, RR.2.8 %+.1f%% (paper ~+10%%)\n",
                100.0 * (sweeps[1].ipcAt(8) / rr18 - 1.0),
                100.0 * (sweeps[2].ipcAt(8) / rr18 - 1.0),
                100.0 * (sweeps[3].ipcAt(8) / rr18 - 1.0));
    smt::printPaperNote(
        "Fig 4 shape: partitioning helps at high thread counts; RR.4.2 "
        "suffers thread shortage; RR.2.8 is best of both worlds");
    return 0;
}
