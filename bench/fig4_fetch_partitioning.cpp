/**
 * @file
 * Figure 4: fetch-partitioning schemes under round-robin priority —
 * RR.1.8, RR.2.4, RR.4.2, RR.2.8 — across thread counts.
 *
 * Paper shape: RR.2.4 beats RR.1.8 by ~9% at 8 threads but loses below
 * 4 threads; RR.4.2 suffers thread shortage and never catches the
 * 2-thread schemes; RR.2.8 matches RR.1.8 at few threads and RR.2.4 at
 * many (~+10% peak).
 *
 * Grid and report live in the sweep engine (experiment "fig4").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("fig4");
}
