/**
 * @file
 * Table 3: low-level metrics of the base architecture (RR.1.8) at 1, 4,
 * and 8 threads — cache/TLB miss rates, mispredict rates, IQ-full
 * fractions, queue population, wrong-path fractions, out-of-registers.
 *
 * Grid and report live in the sweep engine (experiment "table3").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("table3");
}
