/**
 * @file
 * Table 3: low-level metrics of the base architecture (RR.1.8) at 1, 4,
 * and 8 threads — cache/TLB miss rates, mispredict rates, IQ-full
 * fractions, queue population, wrong-path fractions, out-of-registers.
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    const std::vector<unsigned> counts = {1, 4, 8};
    std::vector<smt::DataPoint> points;
    for (unsigned t : counts)
        points.push_back(smt::measure(smt::presets::baseSmt(t), opts));

    smt::Table table("Table 3: base architecture low-level metrics");
    table.setHeader({"metric", "1T", "4T", "8T", "paper 1T/4T/8T"});

    auto row = [&](const char *name, auto metric, const char *paper) {
        std::vector<std::string> r = {name};
        for (const smt::DataPoint &p : points)
            r.push_back(metric(p.stats));
        r.push_back(paper);
        table.addRow(std::move(r));
    };

    using smt::fmtDouble;
    using smt::fmtPercent;
    using smt::SimStats;

    row("out-of-registers (% cycles)",
        [](const SimStats &s) {
            return fmtPercent(s.outOfRegistersFraction());
        },
        "3% / 7% / 3%");
    row("I-cache miss rate",
        [](const SimStats &s) { return fmtPercent(s.icache.missRate()); },
        "2.5% / 7.8% / 14.1%");
    row("I-cache MPKI",
        [](const SimStats &s) {
            return fmtDouble(s.icache.mpki(s.committedInstructions), 1);
        },
        "6 / 17 / 29");
    row("D-cache miss rate",
        [](const SimStats &s) { return fmtPercent(s.dcache.missRate()); },
        "3.1% / 6.5% / 11.3%");
    row("D-cache MPKI",
        [](const SimStats &s) {
            return fmtDouble(s.dcache.mpki(s.committedInstructions), 1);
        },
        "12 / 25 / 43");
    row("L2 miss rate",
        [](const SimStats &s) { return fmtPercent(s.l2.missRate()); },
        "17.6% / 15.0% / 12.5%");
    row("L3 miss rate",
        [](const SimStats &s) { return fmtPercent(s.l3.missRate()); },
        "55.1% / 33.6% / 45.4%");
    row("branch mispredict rate",
        [](const SimStats &s) {
            return fmtPercent(s.branchMispredictRate());
        },
        "5.0% / 7.4% / 9.1%");
    row("jump mispredict rate",
        [](const SimStats &s) { return fmtPercent(s.jumpMispredictRate()); },
        "2.2% / 6.4% / 12.9%");
    row("integer IQ-full (% cycles)",
        [](const SimStats &s) { return fmtPercent(s.intIQFullFraction()); },
        "7% / 10% / 9%");
    row("fp IQ-full (% cycles)",
        [](const SimStats &s) { return fmtPercent(s.fpIQFullFraction()); },
        "14% / 9% / 3%");
    row("avg queue population",
        [](const SimStats &s) { return fmtDouble(s.avgQueuePopulation(), 1); },
        "25 / 25 / 27");
    row("wrong-path fetched",
        [](const SimStats &s) {
            return fmtPercent(s.wrongPathFetchedFraction());
        },
        "24% / 7% / 7%");
    row("wrong-path issued",
        [](const SimStats &s) {
            return fmtPercent(s.wrongPathIssuedFraction());
        },
        "9% / 4% / 3%");
    row("IPC (context)",
        [](const SimStats &s) { return fmtDouble(s.ipc(), 2); },
        "~2.1 / ~3.5 / ~3.9");

    std::printf("%s\n", table.render().c_str());
    smt::printPaperNote(
        "Table 3 shape: cache and predictor pressure grow with threads; "
        "wrong-path fractions shrink; queues stay well-populated");
    return 0;
}
