/**
 * @file
 * Section 7 register-file sensitivity: sweep the excess (renaming)
 * registers per file — 70, 80, 90, 100, 140, effectively-infinite — on
 * ICOUNT.2.8 at 8 threads (and 4 threads for the paper's "nearly
 * identical" claim).
 *
 * Paper: infinite +2% over 100; 90 -> -1%, 80 -> -3%, 70 -> -6%;
 * no sharp drop-off; 4-thread reductions nearly identical.
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();
    const unsigned excess[] = {70, 80, 90, 100, 140, 1000};
    const char *paper[] = {"-6%", "-3%", "-1%", "baseline", "n/a", "+2%"};

    for (unsigned threads : {8u, 4u}) {
        smt::SmtConfig base_cfg = smt::presets::icount28(threads);
        const smt::DataPoint base = smt::measure(base_cfg, opts);

        smt::Table table("Section 7: excess registers sweep, " +
                         std::to_string(threads) + " threads");
        table.setHeader({"excess regs/file", "IPC", "vs 100",
                         "out-of-regs", "paper @8T"});
        for (unsigned i = 0; i < 6; ++i) {
            smt::SmtConfig cfg = base_cfg;
            cfg.excessRegisters = excess[i];
            const smt::DataPoint d =
                excess[i] == 100 ? base : smt::measure(cfg, opts);
            char delta[32];
            std::snprintf(delta, sizeof delta, "%+.1f%%",
                          100.0 * (d.ipc() / base.ipc() - 1.0));
            const std::string label = excess[i] == 1000
                                          ? "inf (1000)"
                                          : std::to_string(excess[i]);
            table.addRow({label, smt::fmtDouble(d.ipc(), 2), delta,
                          smt::fmtPercent(
                              d.stats.outOfRegistersFraction()),
                          paper[i]});
        }
        std::printf("%s\n", table.render().c_str());
    }

    smt::printPaperNote(
        "Sec 7 shape: graceful degradation as renaming registers shrink; "
        "no sharp drop-off point; ICOUNT keeps pressure low");
    return 0;
}
