/**
 * @file
 * Section 7 register-file sensitivity: sweep the excess (renaming)
 * registers per file — 70, 80, 90, 100, 140, effectively-infinite — on
 * ICOUNT.2.8 at 8 threads (and 4 threads for the paper's "nearly
 * identical" claim).
 *
 * Paper: infinite +2% over 100; 90 -> -1%, 80 -> -3%, 70 -> -6%;
 * no sharp drop-off; 4-thread reductions nearly identical.
 *
 * Both thread counts' grids run through one sweep::runPoints() call,
 * so they share the scheduler and the result cache; the excess=100
 * column duplicates the baseline's digest and is measured once.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sweep/runner.hh"

int
main()
{
    const unsigned excess[] = {70, 80, 90, 100, 140, 1000};
    const char *paper[] = {"-6%", "-3%", "-1%", "baseline", "n/a", "+2%"};
    const unsigned thread_counts[] = {8u, 4u};

    const smt::sweep::RunnerOptions ropts =
        smt::sweep::defaultRunnerOptions();
    std::vector<smt::sweep::SweepPoint> points;
    for (unsigned threads : thread_counts) {
        const smt::SmtConfig base_cfg = smt::presets::icount28(threads);
        {
            smt::sweep::SweepPoint p;
            p.label = "base " + std::to_string(threads) + "T";
            p.threads = threads;
            p.config = base_cfg;
            p.options = ropts.measure;
            points.push_back(std::move(p));
        }
        for (unsigned i = 0; i < 6; ++i) {
            smt::sweep::SweepPoint p;
            p.label = "excess " + std::to_string(excess[i]) + " "
                      + std::to_string(threads) + "T";
            p.threads = threads;
            p.config = base_cfg;
            p.config.excessRegisters = excess[i];
            p.options = ropts.measure;
            points.push_back(std::move(p));
        }
    }

    const std::vector<smt::sweep::PointResult> results =
        smt::sweep::runPoints(points, ropts);

    for (unsigned ti = 0; ti < 2; ++ti) {
        const unsigned threads = thread_counts[ti];
        const std::size_t block = ti * 7; // base + 6 variants per count.
        const smt::DataPoint &base = results[block].data;

        smt::Table table("Section 7: excess registers sweep, " +
                         std::to_string(threads) + " threads");
        table.setHeader({"excess regs/file", "IPC", "vs 100",
                         "out-of-regs", "paper @8T"});
        for (unsigned i = 0; i < 6; ++i) {
            const smt::DataPoint &d = results[block + 1 + i].data;
            char delta[32];
            std::snprintf(delta, sizeof delta, "%+.1f%%",
                          100.0 * (d.ipc() / base.ipc() - 1.0));
            const std::string label = excess[i] == 1000
                                          ? "inf (1000)"
                                          : std::to_string(excess[i]);
            table.addRow({label, smt::fmtDouble(d.ipc(), 2), delta,
                          smt::fmtPercent(
                              d.stats.outOfRegistersFraction()),
                          paper[i]});
        }
        std::printf("%s\n", table.render().c_str());
    }

    smt::printPaperNote(
        "Sec 7 shape: graceful degradation as renaming registers shrink; "
        "no sharp drop-off point; ICOUNT keeps pressure low");
    return 0;
}
