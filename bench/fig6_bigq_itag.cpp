/**
 * @file
 * Figure 6: unblocking the fetch unit — BIGQ (double queues, unchanged
 * 32-entry search window) and ITAG (early I-cache tag lookup) on top of
 * ICOUNT.1.8 and ICOUNT.2.8.
 *
 * Paper shape: BIGQ adds nothing (sometimes slightly negative) over
 * ICOUNT; ITAG helps up to ~8% on ICOUNT.1.8, <2% on ICOUNT.2.8, and
 * hurts at few threads (longer misprediction penalty).
 *
 * Grid and report live in the sweep engine (experiment "fig6").
 */

#include "sweep/experiments.hh"

int
main()
{
    return smt::sweep::benchMain("fig6");
}
