/**
 * @file
 * Figure 6: unblocking the fetch unit — BIGQ (double queues, unchanged
 * 32-entry search window) and ITAG (early I-cache tag lookup) on top of
 * ICOUNT.1.8 and ICOUNT.2.8.
 *
 * Paper shape: BIGQ adds nothing (sometimes slightly negative) over
 * ICOUNT; ITAG helps up to ~8% on ICOUNT.1.8, <2% on ICOUNT.2.8, and
 * hurts at few threads (longer misprediction penalty).
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    for (unsigned fetch_threads : {1u, 2u}) {
        const std::string suffix =
            "." + std::to_string(fetch_threads) + ".8";

        auto make = [&](unsigned t, bool bigq, bool itag) {
            smt::SmtConfig cfg = smt::presets::baseSmt(t);
            cfg.fetchPolicy = smt::FetchPolicy::ICount;
            smt::presets::setFetchPartition(cfg, fetch_threads, 8);
            if (bigq) {
                cfg.intQueueEntries = 64;
                cfg.fpQueueEntries = 64;
                cfg.iqSearchWindow = 32;
            }
            cfg.itagEarlyLookup = itag;
            return cfg;
        };

        std::vector<smt::ThreadSweep> sweeps;
        sweeps.push_back(smt::sweepThreads(
            "ICOUNT" + suffix, smt::paperThreadCounts(),
            [&](unsigned t) { return make(t, false, false); }, opts));
        sweeps.push_back(smt::sweepThreads(
            "BIGQ,ICOUNT" + suffix, smt::paperThreadCounts(),
            [&](unsigned t) { return make(t, true, false); }, opts));
        sweeps.push_back(smt::sweepThreads(
            "ITAG,ICOUNT" + suffix, smt::paperThreadCounts(),
            [&](unsigned t) { return make(t, false, true); }, opts));

        smt::Table table = smt::ipcTable(
            "Figure 6: BIGQ and ITAG on ICOUNT" + suffix + " (IPC)",
            sweeps);
        std::printf("%s\n", table.render().c_str());

        const double base8 = sweeps[0].ipcAt(8);
        std::printf("  at 8T vs ICOUNT%s: BIGQ %+.1f%%, ITAG %+.1f%%\n\n",
                    suffix.c_str(),
                    100.0 * (sweeps[1].ipcAt(8) / base8 - 1.0),
                    100.0 * (sweeps[2].ipcAt(8) / base8 - 1.0));
    }

    smt::printPaperNote(
        "Fig 6 shape: BIGQ adds no significant improvement over ICOUNT; "
        "ITAG helps at many threads (more on 1.8 than 2.8) and hurts at "
        "few threads");
    return 0;
}
