/**
 * @file
 * Section 7 branch prediction and speculative execution probes on
 * ICOUNT.2.8:
 *  - perfect branch prediction at 1/4/8 threads (paper: +25%/+15%/+9%);
 *  - doubled BTB+PHT at 8 threads (paper: +2%);
 *  - wrong-path fetch/issue sensitivity: 1 vs 8 threads;
 *  - speculation restrictions: NoWrongPathIssue (paper: -38% @1T,
 *    -7% @8T) and NoPassBranch (paper: -12% @1T, -1.5% @8T).
 *
 * Probes run through sweep::runPoints(), so they share the scheduler
 * and the result cache with every other experiment; repeated machines
 * (the ICOUNT.2.8 baselines) are deduplicated by digest and measured
 * once.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sweep/runner.hh"

int
main()
{
    const smt::sweep::RunnerOptions ropts =
        smt::sweep::defaultRunnerOptions();
    std::vector<smt::sweep::SweepPoint> points;
    const auto add_point = [&](const std::string &label,
                               const smt::SmtConfig &cfg) {
        smt::sweep::SweepPoint p;
        p.label = label;
        p.threads = cfg.numThreads;
        p.config = cfg;
        p.options = ropts.measure;
        points.push_back(std::move(p));
        return points.size() - 1;
    };

    const unsigned counts[] = {1, 4, 8};
    std::size_t base_at[3], perfect_at[3];
    for (unsigned i = 0; i < 3; ++i) {
        const unsigned t = counts[i];
        base_at[i] = add_point("base " + std::to_string(t) + "T",
                               smt::presets::icount28(t));
        smt::SmtConfig perfect = smt::presets::icount28(t);
        perfect.perfectBranchPrediction = true;
        perfect_at[i] =
            add_point("perfect BP " + std::to_string(t) + "T", perfect);
    }
    smt::SmtConfig doubled = smt::presets::icount28(8);
    doubled.btbEntries = 512;
    doubled.phtEntries = 4096;
    const std::size_t doubled_at = add_point("doubled BTB+PHT", doubled);

    struct Mode
    {
        smt::SpeculationMode mode;
        const char *paper;
        std::size_t at1, at8;
    };
    std::vector<Mode> modes = {
        {smt::SpeculationMode::NoPassBranch, "-12% / -1.5%", 0, 0},
        {smt::SpeculationMode::NoWrongPathIssue, "-38% / -7%", 0, 0},
    };
    for (Mode &m : modes) {
        smt::SmtConfig c1 = smt::presets::icount28(1);
        c1.speculation = m.mode;
        m.at1 = add_point(std::string(smt::toString(m.mode)) + " 1T", c1);
        smt::SmtConfig c8 = smt::presets::icount28(8);
        c8.speculation = m.mode;
        m.at8 = add_point(std::string(smt::toString(m.mode)) + " 8T", c8);
    }

    const std::vector<smt::sweep::PointResult> results =
        smt::sweep::runPoints(points, ropts);

    smt::Table bp_table(
        "Section 7: branch prediction sensitivity (ICOUNT.2.8)");
    bp_table.setHeader({"threads", "base IPC", "perfect BP", "gain",
                        "paper gain"});
    const char *paper_gain[] = {"+25%", "+15%", "+9%"};
    for (unsigned i = 0; i < 3; ++i) {
        const smt::DataPoint &base = results[base_at[i]].data;
        const smt::DataPoint &p = results[perfect_at[i]].data;
        char gain[32];
        std::snprintf(gain, sizeof gain, "%+.1f%%",
                      100.0 * (p.ipc() / base.ipc() - 1.0));
        bp_table.addRow({std::to_string(counts[i]),
                         smt::fmtDouble(base.ipc(), 2),
                         smt::fmtDouble(p.ipc(), 2), gain,
                         paper_gain[i]});
    }
    std::printf("%s\n", bp_table.render().c_str());

    {
        const smt::DataPoint &base = results[base_at[2]].data;
        const smt::DataPoint &d = results[doubled_at].data;
        std::printf("doubled BTB+PHT at 8T: %.2f -> %.2f IPC (%+.1f%%; "
                    "paper: +2%%)\n\n",
                    base.ipc(), d.ipc(),
                    100.0 * (d.ipc() / base.ipc() - 1.0));
    }

    smt::Table spec_table(
        "Section 7: speculative execution restrictions (ICOUNT.2.8)");
    spec_table.setHeader({"mode", "1T IPC", "1T cost", "8T IPC", "8T cost",
                          "paper 1T/8T cost"});
    const smt::DataPoint &full1 = results[base_at[0]].data;
    const smt::DataPoint &full8 = results[base_at[2]].data;
    spec_table.addRow({"full speculation", smt::fmtDouble(full1.ipc(), 2),
                       "-", smt::fmtDouble(full8.ipc(), 2), "-", "-"});

    for (const Mode &m : modes) {
        const smt::DataPoint &p1 = results[m.at1].data;
        const smt::DataPoint &p8 = results[m.at8].data;
        char cost1[32], cost8[32];
        std::snprintf(cost1, sizeof cost1, "%+.1f%%",
                      100.0 * (p1.ipc() / full1.ipc() - 1.0));
        std::snprintf(cost8, sizeof cost8, "%+.1f%%",
                      100.0 * (p8.ipc() / full8.ipc() - 1.0));
        spec_table.addRow({smt::toString(m.mode),
                           smt::fmtDouble(p1.ipc(), 2), cost1,
                           smt::fmtDouble(p8.ipc(), 2), cost8, m.paper});
    }
    std::printf("%s\n", spec_table.render().c_str());

    smt::printPaperNote(
        "Sec 7 shape: SMT is far less sensitive than a single-threaded "
        "machine to both prediction quality and speculation restrictions");
    return 0;
}
