/**
 * @file
 * Section 7 branch prediction and speculative execution probes on
 * ICOUNT.2.8:
 *  - perfect branch prediction at 1/4/8 threads (paper: +25%/+15%/+9%);
 *  - doubled BTB+PHT at 8 threads (paper: +2%);
 *  - wrong-path fetch/issue sensitivity: 1 vs 8 threads;
 *  - speculation restrictions: NoWrongPathIssue (paper: -38% @1T,
 *    -7% @8T) and NoPassBranch (paper: -12% @1T, -1.5% @8T).
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    const smt::MeasureOptions opts = smt::defaultMeasureOptions();

    smt::Table bp_table(
        "Section 7: branch prediction sensitivity (ICOUNT.2.8)");
    bp_table.setHeader({"threads", "base IPC", "perfect BP", "gain",
                        "paper gain"});
    const char *paper_gain[] = {"+25%", "+15%", "+9%"};
    const unsigned counts[] = {1, 4, 8};
    for (unsigned i = 0; i < 3; ++i) {
        const unsigned t = counts[i];
        const smt::DataPoint base =
            smt::measure(smt::presets::icount28(t), opts);
        smt::SmtConfig perfect = smt::presets::icount28(t);
        perfect.perfectBranchPrediction = true;
        const smt::DataPoint p = smt::measure(perfect, opts);
        char gain[32];
        std::snprintf(gain, sizeof gain, "%+.1f%%",
                      100.0 * (p.ipc() / base.ipc() - 1.0));
        bp_table.addRow({std::to_string(t), smt::fmtDouble(base.ipc(), 2),
                         smt::fmtDouble(p.ipc(), 2), gain,
                         paper_gain[i]});
    }
    std::printf("%s\n", bp_table.render().c_str());

    {
        const smt::DataPoint base =
            smt::measure(smt::presets::icount28(8), opts);
        smt::SmtConfig doubled = smt::presets::icount28(8);
        doubled.btbEntries = 512;
        doubled.phtEntries = 4096;
        const smt::DataPoint d = smt::measure(doubled, opts);
        std::printf("doubled BTB+PHT at 8T: %.2f -> %.2f IPC (%+.1f%%; "
                    "paper: +2%%)\n\n",
                    base.ipc(), d.ipc(),
                    100.0 * (d.ipc() / base.ipc() - 1.0));
    }

    smt::Table spec_table(
        "Section 7: speculative execution restrictions (ICOUNT.2.8)");
    spec_table.setHeader({"mode", "1T IPC", "1T cost", "8T IPC", "8T cost",
                          "paper 1T/8T cost"});
    const smt::DataPoint full1 =
        smt::measure(smt::presets::icount28(1), opts);
    const smt::DataPoint full8 =
        smt::measure(smt::presets::icount28(8), opts);
    spec_table.addRow({"full speculation", smt::fmtDouble(full1.ipc(), 2),
                       "-", smt::fmtDouble(full8.ipc(), 2), "-", "-"});

    struct Mode
    {
        smt::SpeculationMode mode;
        const char *paper;
    };
    for (const Mode &m :
         {Mode{smt::SpeculationMode::NoPassBranch, "-12% / -1.5%"},
          Mode{smt::SpeculationMode::NoWrongPathIssue, "-38% / -7%"}}) {
        smt::SmtConfig c1 = smt::presets::icount28(1);
        c1.speculation = m.mode;
        smt::SmtConfig c8 = smt::presets::icount28(8);
        c8.speculation = m.mode;
        const smt::DataPoint p1 = smt::measure(c1, opts);
        const smt::DataPoint p8 = smt::measure(c8, opts);
        char cost1[32], cost8[32];
        std::snprintf(cost1, sizeof cost1, "%+.1f%%",
                      100.0 * (p1.ipc() / full1.ipc() - 1.0));
        std::snprintf(cost8, sizeof cost8, "%+.1f%%",
                      100.0 * (p8.ipc() / full8.ipc() - 1.0));
        spec_table.addRow({smt::toString(m.mode),
                           smt::fmtDouble(p1.ipc(), 2), cost1,
                           smt::fmtDouble(p8.ipc(), 2), cost8, m.paper});
    }
    std::printf("%s\n", spec_table.render().c_str());

    smt::printPaperNote(
        "Sec 7 shape: SMT is far less sensitive than a single-threaded "
        "machine to both prediction quality and speculation restrictions");
    return 0;
}
