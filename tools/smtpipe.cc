/**
 * @file
 * smtpipe: the pipeline microscope's analyzer.
 *
 *   smtpipe PIPE.jsonl [MORE.jsonl ...] [options]
 *       ingest every file through the tolerant JSONL reader,
 *       demultiplex the interleaved per-run streams by trace id, and
 *       print the analysis: per-instruction stage-latency percentiles,
 *       IQ residency by op class, wrong-path waste, requeue and
 *       rename-block tallies, and per-thread progress from the sampled
 *       timeline channel.
 *
 * Readers tolerate malformed, torn, and foreign lines (counted,
 * skipped, never fatal) and collapse byte-identical duplicates — a
 * pipe file may share a sink with sweep trace spans.
 *
 * Outputs beyond the text report:
 *   --json PATH        the machine-readable summary ("smt-pipe-v1");
 *                      "-" prints to stdout
 *   --chrome-out PATH  Chrome trace-event JSON of one stream: one
 *                      process per hardware thread, lanes per pipeline
 *                      stage, 1 cycle = 1 µs. Open in Perfetto or
 *                      chrome://tracing
 *   --check            exit 1 when any stream is missing pipe_start or
 *                      pipe_done (truncated file), when any traced
 *                      instruction never reached commit or squash, or
 *                      when the input holds no pipe stream at all —
 *                      CI's lifecycle-closure gate
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/pipe_analysis.hh"
#include "sweep/runner.hh"

namespace
{

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: smtpipe FILE [FILE ...] [options]\n"
        "\n"
        "Analyze per-instruction pipetrace files written by\n"
        "`smtsweep --pipe-out` (or any obs::PipeTrace sink).\n"
        "\n"
        "options:\n"
        "  --trace ID      restrict the Chrome export to this stream\n"
        "                  (default: the stream with the most traced\n"
        "                  instructions; the report and summary always\n"
        "                  cover every stream)\n"
        "  --json PATH     write the machine-readable summary\n"
        "                  (\"-\" for stdout)\n"
        "  --chrome-out P  write a Chrome trace-event JSON export\n"
        "                  (open in Perfetto / chrome://tracing)\n"
        "  --check         exit 1 unless every stream is complete\n"
        "                  (pipe_start + pipe_done present) and every\n"
        "                  traced instruction reached commit or squash\n"
        "  --quiet         suppress the text report\n"
        "  --help, -h      print this help\n");
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smt;

    std::vector<std::string> files;
    std::string trace_id;
    std::string json_path;
    std::string chrome_path;
    bool check = false;
    bool quiet = false;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "smtpipe: %s needs a value\n",
                         argv[i]);
            std::exit(usage(2));
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--trace") == 0)
            trace_id = next_arg(i);
        else if (std::strcmp(arg, "--json") == 0)
            json_path = next_arg(i);
        else if (std::strcmp(arg, "--chrome-out") == 0)
            chrome_path = next_arg(i);
        else if (std::strcmp(arg, "--check") == 0)
            check = true;
        else if (std::strcmp(arg, "--quiet") == 0)
            quiet = true;
        else if (std::strcmp(arg, "--help") == 0
                 || std::strcmp(arg, "-h") == 0)
            return usage(0);
        else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "smtpipe: unknown option %s\n", arg);
            return usage(2);
        } else
            files.push_back(arg);
    }
    if (files.empty()) {
        std::fprintf(stderr, "smtpipe: no input files\n");
        return usage(2);
    }

    obs::TraceSet set;
    for (const std::string &path : files) {
        std::string error;
        if (!set.addFile(path, &error)) {
            std::fprintf(stderr, "smtpipe: %s\n", error.c_str());
            return 2;
        }
    }

    const obs::PipeAnalysis analysis = obs::analyzePipe(set);

    if (!quiet)
        std::fputs(obs::pipeReport(analysis, set).c_str(), stdout);

    if (!json_path.empty()) {
        const sweep::Json summary = obs::pipeSummary(analysis, set);
        if (json_path == "-")
            std::printf("%s\n", summary.dump(2).c_str());
        else
            sweep::writeJsonFile(json_path, summary);
    }

    if (!chrome_path.empty())
        sweep::writeJsonFile(chrome_path,
                             obs::pipeChromeTrace(analysis, trace_id));

    if (check) {
        const std::vector<std::string> problems =
            obs::checkPipe(analysis);
        if (!problems.empty()) {
            for (const std::string &p : problems)
                std::fprintf(stderr, "smtpipe: check FAILED — %s\n",
                             p.c_str());
            return 1;
        }
        if (!quiet)
            std::printf("smtpipe: check passed — %zu stream(s), %zu "
                        "traced instruction(s) all terminal\n",
                        analysis.streams.size(),
                        analysis.instructions);
    }
    return 0;
}
