/**
 * @file
 * smtload: measured load against a live smtstore server.
 *
 *   smtload --url URL [options]
 *       drive N concurrent synthetic workers (a GET/PUT/HEAD/claim/
 *       marker mix over a bounded keyspace) against URL for a fixed
 *       wall-clock window per concurrency level, recording client-side
 *       throughput and latency percentiles plus the server's own
 *       /v1/stats deltas as ground truth;
 *   smtload --self [options]
 *       same, against an in-process server on an ephemeral port — a
 *       self-contained benchmark needing no running daemon (CI's
 *       fallback, and the quickest local smoke).
 *
 * Results land as JSON (--json) in the same shape as BENCH_simspeed:
 * a schema tag, the host fingerprint, the options that produced the
 * numbers, and one record per concurrency level. scripts/
 * check-storeload.sh gates CI on it (zero errors at >= the required
 * level); bench/BENCH_store.json records a full local run.
 *
 * Workers deliberately reuse keep-alive connections and speak the
 * exact production wire protocol (content-digest-verified PUTs, claim
 * CAS bodies) so the benchmark exercises the same code path a sweep
 * worker does, not a synthetic echo.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.hh"
#include "net/http_server.hh"
#include "sim/simspeed.hh"
#include "sweep/digest.hh"
#include "sweep/json.hh"
#include "sweep/remote_store.hh"
#include "sweep/store_service.hh"

namespace
{

using namespace smt;

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: smtload --url URL [options]\n"
        "       smtload --self [options]\n"
        "\n"
        "options:\n"
        "  --url URL       target a running smtstore server\n"
        "  --self          serve an in-process store on an ephemeral\n"
        "                  port and load that (no daemon needed)\n"
        "  --dir DIR       store directory for --self\n"
        "                  (default .smtload-store)\n"
        "  --connections L comma-separated concurrency levels\n"
        "                  (default 4,16,64,256)\n"
        "  --seconds S     measurement window per level (default 2)\n"
        "  --keyspace N    distinct digests the workers touch\n"
        "                  (default 256)\n"
        "  --payload-bytes N\n"
        "                  approximate entry body size (default 2048)\n"
        "  --mix SPEC      op weights, e.g. get=55,put=20,head=15,\n"
        "                  claim=5,marker=5 (the default)\n"
        "  --token-file P  bearer token for an auth-protected server\n"
        "                  ($SMTSTORE_TOKEN also works)\n"
        "  --json PATH     write the result document to PATH\n"
        "  --require-zero-errors\n"
        "                  exit 1 if any level saw a failed request\n"
        "  --min-connections N\n"
        "                  exit 1 unless a level with >= N connections\n"
        "                  completed (the CI concurrency gate)\n"
        "  --help, -h      print this help\n");
    return code;
}

/** One worker's deterministic RNG (split-mix; no global state). */
struct Rng
{
    std::uint64_t s;

    explicit Rng(std::uint64_t seed) : s(seed ^ 0x9e3779b97f4a7c15ULL) {}

    std::uint64_t
    next()
    {
        s += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
};

enum class Op { Get, Put, Head, Claim, Marker };

struct Mix
{
    // Cumulative weight table; pick by a roll in [0, total).
    unsigned get = 55, put = 20, head = 15, claim = 5, marker = 5;

    unsigned total() const { return get + put + head + claim + marker; }

    Op
    pick(std::uint64_t roll) const
    {
        unsigned r = static_cast<unsigned>(roll % total());
        if (r < get)
            return Op::Get;
        r -= get;
        if (r < put)
            return Op::Put;
        r -= put;
        if (r < head)
            return Op::Head;
        r -= head;
        if (r < claim)
            return Op::Claim;
        return Op::Marker;
    }
};

bool
parseMix(const std::string &spec, Mix &mix)
{
    Mix parsed{0, 0, 0, 0, 0};
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string name = item.substr(0, eq);
        char *end = nullptr;
        const unsigned long w =
            std::strtoul(item.c_str() + eq + 1, &end, 10);
        if (end == item.c_str() + eq + 1 || *end != '\0' || w > 1000)
            return false;
        if (name == "get")
            parsed.get = static_cast<unsigned>(w);
        else if (name == "put")
            parsed.put = static_cast<unsigned>(w);
        else if (name == "head")
            parsed.head = static_cast<unsigned>(w);
        else if (name == "claim")
            parsed.claim = static_cast<unsigned>(w);
        else if (name == "marker")
            parsed.marker = static_cast<unsigned>(w);
        else
            return false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (parsed.total() == 0)
        return false;
    mix = parsed;
    return true;
}

bool
parseLevels(const std::string &spec, std::vector<unsigned> &levels)
{
    levels.clear();
    std::size_t pos = 0;
    while (pos < spec.size()) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(spec.c_str() + pos, &end, 10);
        if (end == spec.c_str() + pos || n == 0 || n > 4096)
            return false;
        levels.push_back(static_cast<unsigned>(n));
        pos = static_cast<std::size_t>(end - spec.c_str());
        if (pos < spec.size()) {
            if (spec[pos] != ',')
                return false;
            ++pos;
        }
    }
    return !levels.empty();
}

/** The synthetic keyspace: digest i is stable across runs/workers. */
std::string
keyDigest(unsigned i)
{
    return sweep::digestHex("smtload-key-" + std::to_string(i));
}

/** A digest-valid entry body of roughly `payload` bytes. */
std::string
entryBody(const std::string &digest, std::size_t payload, Rng &rng)
{
    sweep::Json stats = sweep::Json::object();
    stats.set("cycles", sweep::Json(static_cast<std::int64_t>(
                            rng.next() % 1000000)));
    std::string pad;
    pad.reserve(payload);
    while (pad.size() < payload)
        pad += "0123456789abcdef";
    pad.resize(payload);
    stats.set("pad", sweep::Json(pad));
    sweep::Json doc = sweep::Json::object();
    doc.set("digest", sweep::Json(digest));
    doc.set("stats", std::move(stats));
    return doc.dump();
}

struct WorkerResult
{
    std::uint64_t ops = 0;
    std::uint64_t errors = 0;
    std::vector<double> latencies_us;
};

struct LevelResult
{
    unsigned connections = 0;
    std::uint64_t ops = 0;
    std::uint64_t errors = 0;
    double seconds = 0;
    double p50 = 0, p90 = 0, p99 = 0, max = 0;
    std::int64_t server_requests_delta = -1;
};

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** One request with the token attached; nullopt on transport error. */
std::optional<net::HttpResponse>
exchange(net::HttpClient &client, const std::string &token,
         const std::string &method, const std::string &target,
         std::string body = "", const std::string &digest_header = "")
{
    net::HttpRequest req;
    req.method = method;
    req.target = target;
    if (!token.empty())
        req.headers.set("Authorization", "Bearer " + token);
    if (!digest_header.empty())
        req.headers.set("X-Content-Digest", digest_header);
    if (!body.empty()) {
        req.headers.set("Content-Type", "application/json");
        req.body = std::move(body);
    }
    return client.request(req);
}

void
worker(const net::Url &url, const std::string &token, const Mix &mix,
       unsigned keyspace, std::size_t payload,
       std::chrono::steady_clock::time_point stop_at,
       std::uint64_t seed, WorkerResult &out)
{
    net::HttpClient client(url.host, url.port);
    Rng rng(seed);
    sweep::Json marker = sweep::Json::object();
    marker.set("pid", sweep::Json(static_cast<std::int64_t>(seed)));
    marker.set("host", sweep::Json("smtload"));
    const std::string marker_text = marker.dump();

    while (std::chrono::steady_clock::now() < stop_at) {
        const std::string digest =
            keyDigest(static_cast<unsigned>(rng.next() % keyspace));
        const Op op = mix.pick(rng.next());
        const auto t0 = std::chrono::steady_clock::now();
        std::optional<net::HttpResponse> resp;
        bool ok = false;
        switch (op) {
        case Op::Get:
            resp = exchange(client, token, "GET",
                            "/v1/entries/" + digest);
            ok = resp && (resp->status == 200 || resp->status == 404);
            break;
        case Op::Head:
            resp = exchange(client, token, "HEAD",
                            "/v1/entries/" + digest);
            ok = resp && (resp->status == 200 || resp->status == 404);
            break;
        case Op::Put: {
            std::string body = entryBody(digest, payload, rng);
            const std::string content = sweep::contentDigest(body);
            resp = exchange(client, token, "PUT",
                            "/v1/entries/" + digest, std::move(body),
                            content);
            ok = resp && resp->status == 204;
            break;
        }
        case Op::Claim: {
            sweep::Json claim = sweep::Json::object();
            claim.set("expect", sweep::Json(std::string()));
            claim.set("marker", sweep::Json::parseOrDie(marker_text));
            resp = exchange(client, token, "POST",
                            "/v1/claims/" + digest, claim.dump());
            // Lost CAS races and already-done digests are correct
            // outcomes under contention, not errors.
            ok = resp && (resp->status == 200 || resp->status == 409);
            break;
        }
        case Op::Marker:
            resp = exchange(client, token, "PUT",
                            "/v1/markers/" + digest, marker_text);
            ok = resp && resp->status == 204;
            break;
        }
        const auto t1 = std::chrono::steady_clock::now();
        ++out.ops;
        if (!ok)
            ++out.errors;
        out.latencies_us.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1
                                                                 - t0)
                .count()
            / 1e3);
    }
}

/** The server's cumulative net.requests counter, -1 if unreadable. */
std::int64_t
serverRequests(const net::Url &url, const std::string &token)
{
    net::HttpClient client(url.host, url.port);
    const std::optional<net::HttpResponse> resp =
        exchange(client, token, "GET", "/v1/stats");
    if (!resp || resp->status != 200)
        return -1;
    sweep::Json doc;
    if (!sweep::Json::parse(resp->body, doc) || !doc.has("counters"))
        return -1;
    const sweep::Json &counters = doc.at("counters");
    if (!counters.has("net.requests"))
        return -1;
    return counters.at("net.requests").asInt();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smt;

    std::string url_text;
    std::string dir = ".smtload-store";
    std::string token_file;
    std::string json_path;
    std::string levels_spec = "4,16,64,256";
    std::string mix_spec;
    bool self = false;
    bool require_zero_errors = false;
    unsigned min_connections = 0;
    double seconds = 2.0;
    unsigned keyspace = 256;
    unsigned long payload_bytes = 2048;
    Mix mix;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "smtload: %s needs a value\n", argv[i]);
            std::exit(usage(2));
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--url") == 0)
            url_text = next_arg(i);
        else if (std::strcmp(arg, "--self") == 0)
            self = true;
        else if (std::strcmp(arg, "--dir") == 0)
            dir = next_arg(i);
        else if (std::strcmp(arg, "--connections") == 0)
            levels_spec = next_arg(i);
        else if (std::strcmp(arg, "--seconds") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            seconds = std::strtod(value, &end);
            if (end == value || *end != '\0' || seconds <= 0) {
                std::fprintf(stderr,
                             "smtload: --seconds needs a positive "
                             "number, got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--keyspace") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || n == 0 || n > 1000000) {
                std::fprintf(stderr,
                             "smtload: --keyspace needs 1..1000000, "
                             "got \"%s\"\n",
                             value);
                return usage(2);
            }
            keyspace = static_cast<unsigned>(n);
        }
        else if (std::strcmp(arg, "--payload-bytes") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            payload_bytes = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0'
                || payload_bytes > 4 * 1024 * 1024) {
                std::fprintf(stderr,
                             "smtload: --payload-bytes needs 0..4MiB, "
                             "got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--mix") == 0)
            mix_spec = next_arg(i);
        else if (std::strcmp(arg, "--token-file") == 0)
            token_file = next_arg(i);
        else if (std::strcmp(arg, "--json") == 0)
            json_path = next_arg(i);
        else if (std::strcmp(arg, "--require-zero-errors") == 0)
            require_zero_errors = true;
        else if (std::strcmp(arg, "--min-connections") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0') {
                std::fprintf(stderr,
                             "smtload: --min-connections needs a "
                             "count, got \"%s\"\n",
                             value);
                return usage(2);
            }
            min_connections = static_cast<unsigned>(n);
        }
        else if (std::strcmp(arg, "--help") == 0
                 || std::strcmp(arg, "-h") == 0)
            return usage(0);
        else {
            std::fprintf(stderr, "smtload: unknown option %s\n", arg);
            return usage(2);
        }
    }

    if (!self && url_text.empty()) {
        std::fprintf(stderr, "smtload: need --url URL or --self\n");
        return usage(2);
    }
    if (self && !url_text.empty()) {
        std::fprintf(stderr, "smtload: --url and --self conflict\n");
        return usage(2);
    }
    if (!mix_spec.empty() && !parseMix(mix_spec, mix)) {
        std::fprintf(stderr, "smtload: malformed --mix \"%s\"\n",
                     mix_spec.c_str());
        return usage(2);
    }
    std::vector<unsigned> levels;
    if (!parseLevels(levels_spec, levels)) {
        std::fprintf(stderr, "smtload: malformed --connections \"%s\"\n",
                     levels_spec.c_str());
        return usage(2);
    }

    std::string token = sweep::resolveStoreToken("", token_file);

    // --self: an in-process server; the load then exercises exactly
    // the production stack (event loop, dispatch pool, StoreService)
    // minus the NIC.
    std::optional<sweep::StoreService> service;
    std::optional<net::HttpServer> server;
    if (self) {
        service.emplace(dir, false, token);
        server.emplace();
        server->setMetrics(&service->metrics());
        // Headroom above the largest requested level, so the bench
        // measures the loop, not the cap.
        const unsigned top =
            *std::max_element(levels.begin(), levels.end());
        server->setMaxConnections(top + 64);
        std::string error;
        if (!server->start("127.0.0.1", 0,
                           [&](const net::HttpRequest &req) {
                               return service->handle(req);
                           },
                           &error)) {
            std::fprintf(stderr, "smtload: %s\n", error.c_str());
            return 1;
        }
        url_text = "http://127.0.0.1:" + std::to_string(server->port());
    }

    net::Url url;
    if (!net::parseUrl(url_text, url)) {
        std::fprintf(stderr, "smtload: malformed URL \"%s\"\n",
                     url_text.c_str());
        return 2;
    }

    // A reachability probe before burning the measurement window.
    {
        net::HttpClient probe(url.host, url.port);
        const std::optional<net::HttpResponse> resp =
            exchange(probe, token, "GET", "/v1/ping");
        if (!resp || resp->status != 200) {
            std::fprintf(stderr,
                         "smtload: %s is not answering /v1/ping (%s)\n",
                         url_text.c_str(),
                         resp ? ("status "
                                 + std::to_string(resp->status))
                                   .c_str()
                              : probe.lastError().c_str());
            return 1;
        }
    }

    std::vector<LevelResult> results;
    for (const unsigned conns : levels) {
        const std::int64_t before = serverRequests(url, token);
        std::vector<WorkerResult> partial(conns);
        std::vector<std::thread> threads;
        threads.reserve(conns);
        const auto t0 = std::chrono::steady_clock::now();
        const auto stop_at =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
        for (unsigned w = 0; w < conns; ++w)
            threads.emplace_back([&, w] {
                worker(url, token, mix, keyspace, payload_bytes,
                       stop_at, (static_cast<std::uint64_t>(conns) << 32)
                                    | w,
                       partial[w]);
            });
        for (std::thread &t : threads)
            t.join();
        const auto t1 = std::chrono::steady_clock::now();
        const std::int64_t after = serverRequests(url, token);

        LevelResult level;
        level.connections = conns;
        level.seconds =
            std::chrono::duration_cast<std::chrono::microseconds>(t1
                                                                  - t0)
                .count()
            / 1e6;
        std::vector<double> all;
        for (WorkerResult &w : partial) {
            level.ops += w.ops;
            level.errors += w.errors;
            all.insert(all.end(), w.latencies_us.begin(),
                       w.latencies_us.end());
        }
        std::sort(all.begin(), all.end());
        level.p50 = percentile(all, 0.50);
        level.p90 = percentile(all, 0.90);
        level.p99 = percentile(all, 0.99);
        level.max = all.empty() ? 0 : all.back();
        if (before >= 0 && after >= 0)
            level.server_requests_delta = after - before;
        results.push_back(level);

        std::printf("smtload: %4u conns  %8llu ops  %6.0f ops/s  "
                    "p50 %.0fus  p99 %.0fus  max %.0fus  errors %llu\n",
                    conns,
                    static_cast<unsigned long long>(level.ops),
                    level.ops / level.seconds, level.p50, level.p99,
                    level.max,
                    static_cast<unsigned long long>(level.errors));
        std::fflush(stdout);
    }

    if (server.has_value())
        server->stop();

    if (!json_path.empty()) {
        sweep::Json host = sweep::Json::object();
        host.set("fingerprint",
                 sweep::Json(simspeed::hostFingerprint()));
        host.set("hardware_threads",
                 sweep::Json(static_cast<std::int64_t>(
                     std::thread::hardware_concurrency())));
        sweep::Json options = sweep::Json::object();
        options.set("seconds", sweep::Json(seconds));
        options.set("keyspace",
                    sweep::Json(static_cast<std::int64_t>(keyspace)));
        options.set("payload_bytes",
                    sweep::Json(
                        static_cast<std::int64_t>(payload_bytes)));
        sweep::Json mix_doc = sweep::Json::object();
        mix_doc.set("get", sweep::Json(static_cast<std::int64_t>(
                               mix.get)));
        mix_doc.set("put", sweep::Json(static_cast<std::int64_t>(
                               mix.put)));
        mix_doc.set("head", sweep::Json(static_cast<std::int64_t>(
                                mix.head)));
        mix_doc.set("claim", sweep::Json(static_cast<std::int64_t>(
                                 mix.claim)));
        mix_doc.set("marker", sweep::Json(static_cast<std::int64_t>(
                                  mix.marker)));
        options.set("mix", std::move(mix_doc));
        options.set("self", sweep::Json(self));

        sweep::Json level_list = sweep::Json::array();
        for (const LevelResult &level : results) {
            sweep::Json rec = sweep::Json::object();
            rec.set("connections",
                    sweep::Json(static_cast<std::int64_t>(
                        level.connections)));
            rec.set("ops", sweep::Json(static_cast<std::int64_t>(
                               level.ops)));
            rec.set("errors", sweep::Json(static_cast<std::int64_t>(
                                  level.errors)));
            rec.set("seconds", sweep::Json(level.seconds));
            rec.set("ops_per_sec",
                    sweep::Json(level.ops / level.seconds));
            sweep::Json lat = sweep::Json::object();
            lat.set("p50_us", sweep::Json(level.p50));
            lat.set("p90_us", sweep::Json(level.p90));
            lat.set("p99_us", sweep::Json(level.p99));
            lat.set("max_us", sweep::Json(level.max));
            rec.set("latency_us", std::move(lat));
            rec.set("server_requests_delta",
                    sweep::Json(level.server_requests_delta));
            level_list.push(std::move(rec));
        }

        sweep::Json doc = sweep::Json::object();
        doc.set("schema", sweep::Json("smt-storeload-v1"));
        doc.set("host", std::move(host));
        doc.set("options", std::move(options));
        doc.set("levels", std::move(level_list));
        if (!doc.writeFileAtomic(json_path, 2)) {
            std::fprintf(stderr, "smtload: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("smtload: wrote %s\n", json_path.c_str());
    }

    std::uint64_t total_errors = 0;
    unsigned top_level = 0;
    for (const LevelResult &level : results) {
        total_errors += level.errors;
        top_level = std::max(top_level, level.connections);
    }
    if (require_zero_errors && total_errors != 0) {
        std::fprintf(stderr,
                     "smtload: %llu errors with --require-zero-errors\n",
                     static_cast<unsigned long long>(total_errors));
        return 1;
    }
    if (min_connections != 0 && top_level < min_connections) {
        std::fprintf(stderr,
                     "smtload: highest level %u is below "
                     "--min-connections %u\n",
                     top_level, min_connections);
        return 1;
    }
    return 0;
}
