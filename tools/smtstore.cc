/**
 * @file
 * smtstore: serve a result-store directory over HTTP so distributed
 * sweep workers on other machines can share it by URL.
 *
 *   smtstore --dir DIR [--bind ADDR] [--port N] [--token-file P]
 *       serve DIR (created if needed) on http://ADDR:N; every sweep
 *       tool then accepts the URL wherever it accepts --cache-dir
 *       (e.g. `smtsweep --store-url http://host:8377 ...`). With a
 *       token (--token-file or $SMTSTORE_TOKEN) every request must
 *       present it as an Authorization bearer — the gate for serving
 *       beyond a trusted network;
 *   smtstore --ping URL
 *       probe a running server (exit 0 when it answers) and print its
 *       advertised capabilities (schema, auth, transfer encodings,
 *       stats route) — CI uses this to wait for startup without
 *       external tools. Pings a token-protected server with the same
 *       token sources;
 *   smtstore --stats URL
 *       fetch the server's live /v1/stats snapshot (request counters,
 *       entry hit ratio, per-route latency histograms) as JSON on
 *       stdout.
 *
 * The wire protocol (digest-keyed entries with content-digest
 * verification on both ends, x-smt-lz transfer compression, bearer
 * auth, markers with TTL leases, claim CAS, manifest) is specified in
 * docs/PROTOCOL.md.
 */

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "net/http_server.hh"
#include "sweep/remote_store.hh"
#include "sweep/result_store.hh"
#include "sweep/store_service.hh"

namespace
{

volatile sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: smtstore --dir DIR [options]\n"
        "       smtstore --ping URL\n"
        "       smtstore --stats URL\n"
        "\n"
        "options:\n"
        "  --dir DIR       store directory to serve (default .smtstore)\n"
        "  --bind ADDR     listen address (default 127.0.0.1; use\n"
        "                  0.0.0.0 for other machines)\n"
        "  --port N        listen port (default 8377; 0 picks an\n"
        "                  ephemeral port, printed on startup)\n"
        "  --token-file P  require `Authorization: Bearer <token>` on\n"
        "                  every request, token = P's first line\n"
        "                  ($SMTSTORE_TOKEN also works; a flag would\n"
        "                  leak the token into ps)\n"
        "  --ping URL      probe a running server, print its advertised\n"
        "                  capabilities, and exit (sends the token from\n"
        "                  the same sources, if any)\n"
        "  --stats URL     print the server's live /v1/stats snapshot\n"
        "                  as JSON on stdout\n"
        "  --access-log F  append one JSON object per request to F\n"
        "                  (ts, route, method, status, bytes, latency,\n"
        "                  trace id) — the server half of a sweep\n"
        "                  profile; feed it to smttrace\n"
        "  --idle-timeout SEC\n"
        "                  reap a connection that has not delivered a\n"
        "                  complete request (or drained a response)\n"
        "                  within SEC seconds — partial bytes do not\n"
        "                  extend the deadline, so slow-loris clients\n"
        "                  die here (default 30; 0 disables)\n"
        "  --max-connections N\n"
        "                  concurrent connection cap; peers beyond it\n"
        "                  are accepted and immediately closed\n"
        "                  (default 1024)\n"
        "  --dispatch-threads N\n"
        "                  handler pool width for blocking work —\n"
        "                  disk I/O, the claim mutex (default 4)\n"
        "  --verbose       log every request (method, path, status,\n"
        "                  bytes, latency, trace id)\n"
        "  --help, -h      print this help\n");
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smt;

    std::string dir = ".smtstore";
    std::string bind_addr = "127.0.0.1";
    std::string ping_url;
    std::string stats_url;
    std::string token_file;
    std::string access_log;
    unsigned port = 8377;
    bool verbose = false;
    double idle_timeout = 30.0;
    unsigned long max_connections = 1024;
    unsigned long dispatch_threads = 4;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "smtstore: %s needs a value\n", argv[i]);
            std::exit(usage(2));
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--dir") == 0)
            dir = next_arg(i);
        else if (std::strcmp(arg, "--bind") == 0)
            bind_addr = next_arg(i);
        else if (std::strcmp(arg, "--port") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            const unsigned long n = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || n > 65535) {
                std::fprintf(stderr,
                             "smtstore: --port needs 0..65535, got "
                             "\"%s\"\n",
                             value);
                return usage(2);
            }
            port = static_cast<unsigned>(n);
        }
        else if (std::strcmp(arg, "--token-file") == 0)
            token_file = next_arg(i);
        else if (std::strcmp(arg, "--idle-timeout") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            idle_timeout = std::strtod(value, &end);
            if (end == value || *end != '\0' || idle_timeout < 0) {
                std::fprintf(stderr,
                             "smtstore: --idle-timeout needs seconds "
                             ">= 0, got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--max-connections") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            max_connections = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || max_connections == 0) {
                std::fprintf(stderr,
                             "smtstore: --max-connections needs a "
                             "positive count, got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--dispatch-threads") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            dispatch_threads = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || dispatch_threads == 0) {
                std::fprintf(stderr,
                             "smtstore: --dispatch-threads needs a "
                             "positive count, got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--access-log") == 0)
            access_log = next_arg(i);
        else if (std::strcmp(arg, "--ping") == 0)
            ping_url = next_arg(i);
        else if (std::strcmp(arg, "--stats") == 0)
            stats_url = next_arg(i);
        else if (std::strcmp(arg, "--verbose") == 0)
            verbose = true;
        else if (std::strcmp(arg, "--help") == 0
                 || std::strcmp(arg, "-h") == 0)
            return usage(0);
        else {
            std::fprintf(stderr, "smtstore: unknown option %s\n", arg);
            return usage(2);
        }
    }

    const std::string token = sweep::resolveStoreToken("", token_file);

    if (!ping_url.empty()) {
        net::Url url;
        if (!net::parseUrl(ping_url, url)) {
            std::fprintf(stderr, "smtstore: malformed URL \"%s\"\n",
                         ping_url.c_str());
            return 2;
        }
        const sweep::RemoteResultStore store(url, token);
        std::string error;
        const std::optional<sweep::Json> doc = store.pingDocument(&error);
        if (!doc.has_value()) {
            std::fprintf(stderr, "smtstore: %s is not answering: %s\n",
                         ping_url.c_str(), error.c_str());
            return 1;
        }
        // Advertised capabilities, so an operator (or CI log reader)
        // sees at a glance what this server speaks. Fields print
        // whatever scalar the server sent (schema is numeric).
        const auto scalar = [&](const char *key) -> std::string {
            if (!doc->has(key))
                return "?";
            const sweep::Json &v = doc->at(key);
            return v.type() == sweep::Json::Type::String ? v.asString()
                                                         : v.dump();
        };
        std::string encodings;
        if (doc->has("encodings")) {
            const sweep::Json &list = doc->at("encodings");
            for (std::size_t i = 0; i < list.size(); ++i) {
                if (!encodings.empty())
                    encodings += ",";
                encodings += list[i].asString();
            }
        }
        std::printf("smtstore at %s is alive (schema %s, auth %s, "
                    "encodings %s, stats %s, trace %s)\n",
                    ping_url.c_str(), scalar("schema").c_str(),
                    scalar("auth").c_str(),
                    encodings.empty() ? "identity" : encodings.c_str(),
                    doc->has("stats") && doc->at("stats").asBool()
                        ? "yes"
                        : "no",
                    doc->has("trace") && doc->at("trace").asBool()
                        ? "yes"
                        : "no");
        return 0;
    }

    if (!stats_url.empty()) {
        net::Url url;
        if (!net::parseUrl(stats_url, url)) {
            std::fprintf(stderr, "smtstore: malformed URL \"%s\"\n",
                         stats_url.c_str());
            return 2;
        }
        const sweep::RemoteResultStore store(url, token);
        std::string error;
        const std::optional<sweep::Json> stats = store.stats(&error);
        if (!stats.has_value()) {
            std::fprintf(stderr, "smtstore: cannot fetch stats from "
                                 "%s: %s\n",
                         stats_url.c_str(), error.c_str());
            return 1;
        }
        std::printf("%s\n", stats->dump(2).c_str());
        return 0;
    }

    sweep::StoreService service(dir, verbose, token);
    if (!access_log.empty()) {
        std::string log_error;
        if (!service.setAccessLog(access_log, &log_error)) {
            std::fprintf(stderr, "smtstore: %s\n", log_error.c_str());
            return 1;
        }
    }
    net::HttpServer server;
    // One registry for both layers: the transport counters the server
    // maintains and the per-route counters the service maintains all
    // surface through the same /v1/stats snapshot.
    server.setMetrics(&service.metrics());
    server.setIdleTimeout(idle_timeout);
    server.setMaxConnections(max_connections);
    server.setDispatchThreads(dispatch_threads);
    std::string error;
    if (!server.start(bind_addr, static_cast<std::uint16_t>(port),
                      [&service](const net::HttpRequest &req) {
                          return service.handle(req);
                      },
                      &error)) {
        std::fprintf(stderr, "smtstore: %s\n", error.c_str());
        return 1;
    }

    std::printf("smtstore: serving %s on http://%s:%u%s\n",
                service.dir().c_str(), bind_addr.c_str(),
                static_cast<unsigned>(server.port()),
                service.requiresAuth() ? " (bearer auth required)"
                                       : "");
    std::fflush(stdout);

    // Block the shutdown signals, then wait with sigsuspend: the
    // check-then-wait is atomic, so a signal landing between the test
    // and the wait cannot be lost (the classic pause() race).
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    sigset_t block, old;
    ::sigemptyset(&block);
    ::sigaddset(&block, SIGINT);
    ::sigaddset(&block, SIGTERM);
    ::sigprocmask(SIG_BLOCK, &block, &old);
    while (g_stop == 0)
        ::sigsuspend(&old);
    ::sigprocmask(SIG_SETMASK, &old, nullptr);

    std::printf("smtstore: shutting down\n");
    server.stop();
    return 0;
}
