/**
 * @file
 * smtsweep: run any named experiment through the sweep engine.
 *
 *   smtsweep --experiment fig5
 *       run Figure 5's grid (printing the same self-check table as
 *       bench/fig5_fetch_policies) with on-disk result caching;
 *   smtsweep --experiment fig5 --require-cached
 *       assert the whole grid replays from cache (CI's second pass);
 *   smtsweep --list | --describe NAME
 *       enumerate / inspect experiment grids without running them;
 *   smtsweep --bench-simspeed [--json BENCH_simspeed.json]
 *       measure simulator speed (simulated cycles per wall-clock
 *       second) over the default machine shapes and write the
 *       "smt-simspeed-v1" artifact scripts/check-simspeed.sh gates on.
 *
 * Measurement knobs come from the SMTSIM_CYCLES / SMTSIM_WARMUP /
 * SMTSIM_RUNS / SMTSIM_SERIAL environment (like the bench binaries)
 * unless overridden by flags.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dist/shard.hh"
#include "obs/trace.hh"
#include "sim/simspeed.hh"
#include "sweep/digest.hh"
#include "sweep/experiments.hh"
#include "sweep/result_cache.hh"
#include "sweep/result_store.hh"
#include "sweep/runner.hh"
#include "sweep/thread_pool.hh"

namespace
{

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: smtsweep --experiment NAME [options]\n"
        "       smtsweep --list\n"
        "       smtsweep --describe NAME\n"
        "       smtsweep --bench-simspeed [options]\n"
        "\n"
        "options:\n"
        "  --bench-simspeed    measure simulator cycles/sec over the\n"
        "                      default machine shapes; writes the\n"
        "                      smt-simspeed-v1 JSON to --json (default\n"
        "                      BENCH_simspeed.json)\n"
        "  --force-generic     with --bench-simspeed: pin the\n"
        "                      virtual-dispatch core engine (A/B\n"
        "                      against the specialized engines)\n"
        "  --experiment NAME   experiment to run (repeatable)\n"
        "  --list              list every experiment and exit\n"
        "  --describe NAME     print an experiment's grid as JSON\n"
        "                      (repeatable)\n"
        "  --cache-dir DIR     result cache directory (default\n"
        "                      $SMTSWEEP_CACHE or .smtsweep-cache)\n"
        "  --store-url URL     shared result store served by smtstore\n"
        "                      (http://host:port; same slot as\n"
        "                      --cache-dir)\n"
        "  --store-token T     bearer token for a token-protected\n"
        "                      store (prefer --store-token-file or\n"
        "                      $SMTSTORE_TOKEN: argv is visible in ps)\n"
        "  --store-token-file P  read the token's first line from P\n"
        "  --marker-ttl S      in-progress marker lease seconds\n"
        "                      (default 60; heartbeats refresh at S/3)\n"
        "  --no-cache          disable the result cache\n"
        "  --require-cached    fail on any cache miss\n"
        "  --json PATH         write a BENCH_sweep.json artifact\n"
        "  --cycles N          measured cycles per run\n"
        "  --warmup N          warmup cycles per run\n"
        "  --runs N            rotation runs per data point\n"
        "  --jobs N            worker threads for the shared pool\n"
        "  --serial            run data points serially (no pool)\n"
        "  --shard I/N         run only shard I of N into the shared\n"
        "                      store (the smtsweep-dist worker protocol;\n"
        "                      no report is printed)\n"
        "  --progress-file P   append JSONL heartbeat records to P\n"
        "  --progress-stdout   heartbeat to stdout instead (remote\n"
        "                      workers; the coordinator captures it)\n"
        "  --steal             after the shard: adopt orphaned digests\n"
        "                      of dead shards via the store claim CAS\n"
        "  --steal-wait S      grace seconds to linger for orphans\n"
        "                      (default 10)\n"
        "  --stall-report      after each experiment: print the\n"
        "                      per-thread per-cause stall table (fetch/\n"
        "                      rename/issue slot losses) for every point;\n"
        "                      with --json, each point of the artifact\n"
        "                      also carries the ledger as machine-\n"
        "                      readable \"stalls\" (smttrace --stalls\n"
        "                      embeds it in a sweep profile)\n"
        "  --trace-out FILE    append one JSONL trace span per digest\n"
        "                      transition (queued/claimed/run/stored/\n"
        "                      hit) to FILE; the trace id also rides\n"
        "                      X-Smt-Trace on remote-store requests\n"
        "  --pipe-out FILE     stream the pipeline microscope to FILE:\n"
        "                      every measured rotation run appends its\n"
        "                      per-instruction lifecycle (fetch through\n"
        "                      commit/squash) as its own JSONL stream;\n"
        "                      analyze with smtpipe. Cache hits replay\n"
        "                      no cycles and trace nothing\n"
        "  --pipe-window F:L   with --pipe-out: only trace instructions\n"
        "                      fetched in absolute machine cycles\n"
        "                      [F, L] (warmup cycles count; default:\n"
        "                      every cycle — large!)\n"
        "  --pipe-sample N     with --pipe-out: every N cycles inside\n"
        "                      the window, emit an occupancy/stall\n"
        "                      sample line (default 0 = off)\n"
        "  --pipe-ab           with --bench-simspeed: also measure each\n"
        "                      shape with a full-window pipetrace\n"
        "                      writing to /dev/null, and print the\n"
        "                      on/off throughput ratio\n"
        "  --verbose           log per-point cache hits/misses\n"
        "  --help, -h          print this help\n");
    return code;
}

/** Parse "I/N" with 0 <= I < N; exits on malformed input. */
void
parseShardSpec(const char *text, unsigned &index, unsigned &count)
{
    char *end = nullptr;
    const unsigned long i = std::strtoul(text, &end, 10);
    if (end == text || *end != '/') {
        std::fprintf(stderr, "smtsweep: --shard wants I/N, got \"%s\"\n",
                     text);
        std::exit(usage(2));
    }
    const char *rest = end + 1;
    const unsigned long n = std::strtoul(rest, &end, 10);
    if (end == rest || *end != '\0' || n < 1 || i >= n) {
        std::fprintf(stderr,
                     "smtsweep: --shard wants I/N with 0 <= I < N, "
                     "got \"%s\"\n",
                     text);
        std::exit(usage(2));
    }
    index = static_cast<unsigned>(i);
    count = static_cast<unsigned>(n);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smt::sweep;

    RunnerOptions ropts = defaultRunnerOptions();
    if (ropts.cacheDir.empty())
        ropts.cacheDir = ".smtsweep-cache";

    std::vector<std::string> names;
    std::string json_path;
    std::string store_token, store_token_file;
    smt::dist::ShardWorkerOptions wopts;
    unsigned shard_count = 0;
    bool list = false;
    bool bench_simspeed = false;
    bool force_generic = false;
    bool stall_report = false;
    bool pipe_ab = false;
    std::string trace_out;
    std::string pipe_out;
    std::vector<std::string> describe;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "smtsweep: %s needs a value\n", argv[i]);
            std::exit(usage(2));
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--experiment") == 0)
            names.push_back(next_arg(i));
        else if (std::strcmp(arg, "--cache-dir") == 0
                 || std::strcmp(arg, "--store-url") == 0)
            ropts.cacheDir = next_arg(i);
        else if (std::strcmp(arg, "--store-token") == 0)
            store_token = next_arg(i);
        else if (std::strcmp(arg, "--store-token-file") == 0)
            store_token_file = next_arg(i);
        else if (std::strcmp(arg, "--marker-ttl") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            ropts.markerTtlSeconds = std::strtod(value, &end);
            if (end == value || ropts.markerTtlSeconds <= 0.0) {
                std::fprintf(stderr,
                             "smtsweep: --marker-ttl needs positive "
                             "seconds, got \"%s\"\n",
                             value);
                return 2;
            }
        }
        else if (std::strcmp(arg, "--no-cache") == 0)
            ropts.cacheDir.clear();
        else if (std::strcmp(arg, "--require-cached") == 0)
            ropts.requireCached = true;
        else if (std::strcmp(arg, "--json") == 0)
            json_path = next_arg(i);
        else if (std::strcmp(arg, "--cycles") == 0)
            ropts.measure.cyclesPerRun =
                std::strtoull(next_arg(i), nullptr, 10);
        else if (std::strcmp(arg, "--warmup") == 0)
            ropts.measure.warmupCycles =
                std::strtoull(next_arg(i), nullptr, 10);
        else if (std::strcmp(arg, "--runs") == 0) {
            const char *value = next_arg(i);
            ropts.measure.runs = static_cast<unsigned>(
                std::strtoul(value, nullptr, 10));
            if (ropts.measure.runs < 1) {
                std::fprintf(stderr,
                             "smtsweep: --runs needs a positive count, "
                             "got \"%s\"\n",
                             value);
                return 2;
            }
        }
        else if (std::strcmp(arg, "--jobs") == 0) {
            const char *value = next_arg(i);
            ropts.jobs = static_cast<unsigned>(
                std::strtoul(value, nullptr, 10));
            if (ropts.jobs < 1) {
                std::fprintf(stderr,
                             "smtsweep: --jobs needs a positive count, "
                             "got \"%s\"\n",
                             value);
                return 2;
            }
        }
        else if (std::strcmp(arg, "--shard") == 0) {
            parseShardSpec(next_arg(i), wopts.index, shard_count);
            wopts.count = shard_count;
        }
        else if (std::strcmp(arg, "--progress-file") == 0)
            wopts.progressPath = next_arg(i);
        else if (std::strcmp(arg, "--progress-stdout") == 0)
            wopts.progressToStdout = true;
        else if (std::strcmp(arg, "--steal") == 0)
            wopts.steal.enabled = true;
        else if (std::strcmp(arg, "--steal-wait") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            wopts.steal.waitSeconds = std::strtod(value, &end);
            if (end == value || wopts.steal.waitSeconds < 0.0) {
                std::fprintf(stderr,
                             "smtsweep: --steal-wait needs seconds, "
                             "got \"%s\"\n",
                             value);
                return 2;
            }
        }
        else if (std::strcmp(arg, "--stall-report") == 0)
            stall_report = true;
        else if (std::strcmp(arg, "--trace-out") == 0)
            trace_out = next_arg(i);
        else if (std::strcmp(arg, "--pipe-out") == 0)
            pipe_out = next_arg(i);
        else if (std::strcmp(arg, "--pipe-window") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            ropts.pipeOptions.windowFirst =
                std::strtoull(value, &end, 10);
            if (end == value || *end != ':') {
                std::fprintf(stderr,
                             "smtsweep: --pipe-window wants FIRST:LAST "
                             "cycles, got \"%s\"\n",
                             value);
                return 2;
            }
            const char *rest = end + 1;
            ropts.pipeOptions.windowLast =
                std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\0'
                || ropts.pipeOptions.windowLast
                       < ropts.pipeOptions.windowFirst) {
                std::fprintf(stderr,
                             "smtsweep: --pipe-window wants "
                             "FIRST:LAST with FIRST <= LAST, got "
                             "\"%s\"\n",
                             value);
                return 2;
            }
        }
        else if (std::strcmp(arg, "--pipe-sample") == 0)
            ropts.pipeOptions.samplePeriod =
                std::strtoull(next_arg(i), nullptr, 10);
        else if (std::strcmp(arg, "--pipe-ab") == 0)
            pipe_ab = true;
        else if (std::strcmp(arg, "--serial") == 0)
            ropts.measure.parallel = false;
        else if (std::strcmp(arg, "--verbose") == 0)
            ropts.verbose = true;
        else if (std::strcmp(arg, "--list") == 0)
            list = true;
        else if (std::strcmp(arg, "--bench-simspeed") == 0)
            bench_simspeed = true;
        else if (std::strcmp(arg, "--force-generic") == 0)
            force_generic = true;
        else if (std::strcmp(arg, "--describe") == 0)
            describe.push_back(next_arg(i));
        else if (std::strcmp(arg, "--help") == 0
                 || std::strcmp(arg, "-h") == 0)
            return usage(0);
        else {
            std::fprintf(stderr, "smtsweep: unknown option %s\n", arg);
            return usage(2);
        }
    }

    // Token precedence: explicit flag, then file, then the
    // environment (how a coordinator hands it to its workers without
    // touching their argv).
    ropts.storeToken =
        resolveStoreToken(store_token, store_token_file);

    // The trace writer must outlive every sweep below; its id comes
    // from SMTSWEEP_TRACE_ID when a coordinator launched us, else a
    // fresh one is minted.
    std::unique_ptr<smt::obs::TraceWriter> trace;
    if (!trace_out.empty()) {
        trace = std::make_unique<smt::obs::TraceWriter>(trace_out);
        ropts.trace = trace.get();
    }

    // The pipe sink is shared by every measured run of every sweep
    // below; each run interleaves its own stream into the one file.
    std::unique_ptr<smt::obs::PipeTraceSink> pipe_sink;
    if (!pipe_out.empty()) {
        pipe_sink = std::make_unique<smt::obs::PipeTraceSink>(pipe_out);
        ropts.pipeSink = pipe_sink.get();
    }

    if (list) {
        for (const NamedExperiment &e : allExperiments())
            std::printf("%-8s %4zu points  %s\n", e.spec.name.c_str(),
                        e.spec.gridSize(), e.spec.title.c_str());
        return 0;
    }
    for (const std::string &name : describe) {
        const NamedExperiment *e = findExperiment(name);
        if (e == nullptr) {
            std::fprintf(stderr, "smtsweep: unknown experiment \"%s\"\n",
                         name.c_str());
            return 2;
        }
        std::printf("%s\n", e->spec.describe().dump(2).c_str());
    }
    if (!describe.empty() && names.empty())
        return 0;

    // Simulator-speed benchmark: no sweep engine, no cache — just the
    // measurement library and its JSON artifact.
    if (bench_simspeed) {
        smt::simspeed::Options sopts;
        sopts.warmupCycles = ropts.measure.warmupCycles;
        sopts.measureCycles = ropts.measure.cyclesPerRun;
        sopts.repeats = ropts.measure.runs;
        if (force_generic)
            sopts.dispatch = smt::CoreDispatch::ForceGeneric;
        sopts.pipeAb = pipe_ab;
        const auto results =
            smt::simspeed::measureAll(smt::simspeed::defaultShapes(),
                                      sopts);
        std::fputs(smt::simspeed::formatTable(results).c_str(), stdout);
        const std::string out_path =
            json_path.empty() ? "BENCH_simspeed.json" : json_path;
        writeJsonFile(out_path, smt::simspeed::toJson(results, sopts));
        std::printf("wrote %s\n", out_path.c_str());
        return 0;
    }

    if (names.empty()) {
        std::fprintf(stderr, "smtsweep: no experiment named "
                             "(try --list)\n");
        return usage(2);
    }

    // Worker protocol: measure only this shard's slice of the grid
    // into the shared store; the coordinator merges and reports.
    if (shard_count > 0) {
        if (names.size() != 1) {
            std::fprintf(stderr, "smtsweep: --shard runs exactly one "
                                 "experiment\n");
            return usage(2);
        }
        const NamedExperiment *e = findExperiment(names[0]);
        if (e == nullptr) {
            std::fprintf(stderr, "smtsweep: unknown experiment \"%s\" "
                                 "(try --list)\n",
                         names[0].c_str());
            return 2;
        }
        if (ropts.cacheDir.empty()) {
            std::fprintf(stderr, "smtsweep: --shard needs a shared "
                                 "store; do not pass --no-cache\n");
            return usage(2);
        }
        const smt::dist::ShardRunResult r =
            smt::dist::runShard(e->spec, ropts, wopts);
        std::printf("shard %u/%u of %s: %zu points (%zu hits, "
                    "%zu misses), %zu stolen, %.2fs wall\n",
                    wopts.index, wopts.count, names[0].c_str(), r.points,
                    r.cacheHits, r.cacheMisses, r.stolen, r.wallSeconds);
        return 0;
    }

    std::vector<SweepOutcome> outcomes;
    for (const std::string &name : names) {
        const NamedExperiment *e = findExperiment(name);
        if (e == nullptr) {
            std::fprintf(stderr, "smtsweep: unknown experiment \"%s\" "
                                 "(try --list)\n",
                         name.c_str());
            return 2;
        }
        SweepOutcome outcome = runSweep(e->spec, ropts);
        e->report(outcome);
        if (stall_report) {
            for (const PointResult &r : outcome.points)
                std::printf("\nstall report: %s (%u threads)%s\n%s",
                            r.point.label.c_str(), r.point.threads,
                            r.cached ? " [cached]" : "",
                            r.data.stats.stallReport(r.point.threads)
                                .c_str());
        }
        std::printf("sweep %s: %zu points, %u cache hits, %u misses, "
                    "%.2fs wall (pool: %u workers%s)\n",
                    outcome.spec.name.c_str(), outcome.points.size(),
                    outcome.cacheHits, outcome.cacheMisses,
                    outcome.wallSeconds, ThreadPool::global().workerCount(),
                    ropts.cacheDir.empty() ? ", cache off" : "");
        outcomes.push_back(std::move(outcome));
    }

    if (!json_path.empty())
        writeJsonFile(json_path, outcomeArtifact(outcomes, stall_report));
    return 0;
}
