/**
 * @file
 * smttrace: profile a sweep from its trace files and store access
 * logs.
 *
 *   smttrace TRACE.jsonl [MORE.jsonl ...] [--access-log LOG] ...
 *       ingest every file (trace spans and access logs are told apart
 *       by line shape, so the slots are interchangeable), join them
 *       by trace id, and print the analysis: per-worker utilization
 *       ledger, straggler/skew, store latency percentiles, claim
 *       contention, the critical-path digest chain, and any digest
 *       that never reached a terminal state (stored/hit).
 *
 * Readers tolerate malformed, torn, and foreign lines (counted,
 * skipped, never fatal) and collapse byte-identical duplicates — a
 * worker's span legitimately appears both in its local trace file and
 * in the store's server-side /v1/trace capture.
 *
 * Outputs beyond the text report:
 *   --json PATH        the machine-readable summary ("smt-trace-v1");
 *                      "-" prints to stdout
 *   --chrome-out PATH  Chrome trace-event JSON: load in Perfetto or
 *                      chrome://tracing, one track per worker
 *   --check            exit 1 when any digest never reached a
 *                      terminal state, or when the trace contains no
 *                      digest lifecycle at all (the signature of
 *                      workers whose spans were lost) — CI's gate
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace_analysis.hh"
#include "sweep/runner.hh"

namespace
{

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: smttrace FILE [FILE ...] [options]\n"
        "\n"
        "Analyze sweep trace files (--trace-out spans, server-side\n"
        "/v1/trace captures) joined with smtstore access logs.\n"
        "\n"
        "options:\n"
        "  --access-log F  ingest an smtstore --access-log file\n"
        "                  (repeatable; store latency and claim\n"
        "                  contention come from these records)\n"
        "  --trace ID      analyze this trace id (default: the id\n"
        "                  with the most spans in the input)\n"
        "  --json PATH     write the machine-readable summary\n"
        "                  (\"-\" for stdout)\n"
        "  --chrome-out P  write a Chrome trace-event JSON export\n"
        "                  (open in Perfetto / chrome://tracing)\n"
        "  --stalls F      embed the stall ledger from an\n"
        "                  `smtsweep --stall-report --json` artifact\n"
        "                  into the summary\n"
        "  --check         exit 1 if any digest never reached a\n"
        "                  terminal state (stored/hit), or if no\n"
        "                  digest lifecycle was traced at all\n"
        "  --quiet         suppress the text report\n"
        "  --help, -h      print this help\n");
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smt;

    std::vector<std::string> files;
    std::vector<std::string> access_logs;
    std::string trace_id;
    std::string json_path;
    std::string chrome_path;
    std::string stalls_path;
    bool check = false;
    bool quiet = false;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "smttrace: %s needs a value\n",
                         argv[i]);
            std::exit(usage(2));
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--access-log") == 0)
            access_logs.push_back(next_arg(i));
        else if (std::strcmp(arg, "--trace") == 0)
            trace_id = next_arg(i);
        else if (std::strcmp(arg, "--json") == 0)
            json_path = next_arg(i);
        else if (std::strcmp(arg, "--chrome-out") == 0)
            chrome_path = next_arg(i);
        else if (std::strcmp(arg, "--stalls") == 0)
            stalls_path = next_arg(i);
        else if (std::strcmp(arg, "--check") == 0)
            check = true;
        else if (std::strcmp(arg, "--quiet") == 0)
            quiet = true;
        else if (std::strcmp(arg, "--help") == 0
                 || std::strcmp(arg, "-h") == 0)
            return usage(0);
        else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "smttrace: unknown option %s\n", arg);
            return usage(2);
        } else
            files.push_back(arg);
    }
    if (files.empty() && access_logs.empty()) {
        std::fprintf(stderr, "smttrace: no input files\n");
        return usage(2);
    }

    obs::TraceSet set;
    for (const std::string &path : files) {
        std::string error;
        if (!set.addFile(path, &error)) {
            std::fprintf(stderr, "smttrace: %s\n", error.c_str());
            return 2;
        }
    }
    for (const std::string &path : access_logs) {
        std::string error;
        if (!set.addFile(path, &error)) {
            std::fprintf(stderr, "smttrace: %s\n", error.c_str());
            return 2;
        }
    }

    // An optional stall ledger (from `smtsweep --stall-report --json`)
    // rides the summary verbatim, so one artifact profiles both tiers:
    // where the sweep's wall time went and where the simulated
    // machine's issue slots went.
    sweep::Json stalls;
    bool have_stalls = false;
    if (!stalls_path.empty()) {
        if (!sweep::Json::readFile(stalls_path, stalls)) {
            std::fprintf(stderr,
                         "smttrace: cannot read stall JSON %s\n",
                         stalls_path.c_str());
            return 2;
        }
        have_stalls = true;
    }

    const obs::TraceAnalysis analysis =
        obs::analyzeTrace(set, trace_id);

    if (!quiet)
        std::fputs(obs::analysisReport(analysis, set).c_str(), stdout);

    if (!json_path.empty()) {
        const sweep::Json summary = obs::analysisSummary(
            analysis, set, have_stalls ? &stalls : nullptr);
        if (json_path == "-")
            std::printf("%s\n", summary.dump(2).c_str());
        else
            sweep::writeJsonFile(json_path, summary);
    }

    if (!chrome_path.empty())
        sweep::writeJsonFile(chrome_path,
                             obs::chromeTrace(set, trace_id));

    if (check) {
        if (analysis.digests.empty()) {
            std::fprintf(stderr,
                         "smttrace: check FAILED — the trace has no "
                         "digest lifecycle at all (were worker spans "
                         "collected?)\n");
            return 1;
        }
        if (analysis.nonTerminal > 0) {
            std::fprintf(stderr,
                         "smttrace: check FAILED — %zu digest(s) "
                         "never reached a terminal state\n",
                         analysis.nonTerminal);
            return 1;
        }
        if (!quiet)
            std::printf("smttrace: check passed — %zu digest(s) all "
                        "terminal\n",
                        analysis.digests.size());
    }
    return 0;
}
