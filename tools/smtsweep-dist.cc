/**
 * @file
 * smtsweep-dist: run a named experiment sharded across worker
 * processes sharing one result store.
 *
 *   smtsweep-dist --experiment smoke --shards 2
 *       partition the smoke grid into two cost-balanced shards, run
 *       one `smtsweep --shard i/2` worker per shard into the shared
 *       store (live progress + ETA on stderr), then merge the store
 *       into the same report a serial `smtsweep --experiment smoke`
 *       prints — bit-identical per-point stats;
 *   smtsweep-dist --experiment fig5 --shards 4 \
 *       --hosts hostA,hostB --store-url http://hostC:8377
 *       the same, but workers run over ssh on a host list against a
 *       store served by `smtstore` — shards span machines;
 *   smtsweep-dist --status --cache-dir DIR|--store-url URL [--json -]
 *       audit a store against its manifest (done / in-progress /
 *       orphaned / pending work), optionally as JSON.
 *
 * Worker deaths are absorbed by orphan-aware work stealing (idle
 * workers adopt the dead shard's digests through the store claim CAS)
 * unless --no-steal asks for the classic per-shard relaunch.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "dist/coordinator.hh"
#include "obs/trace.hh"
#include "sweep/experiments.hh"
#include "sweep/remote_store.hh"
#include "sweep/result_store.hh"
#include "sweep/runner.hh"

namespace
{

int
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: smtsweep-dist --experiment NAME [options]\n"
        "       smtsweep-dist --status [--cache-dir DIR | "
        "--store-url URL]\n"
        "\n"
        "options:\n"
        "  --experiment NAME   experiment to run (see smtsweep --list)\n"
        "  --shards N          worker processes to shard across "
        "(default 2)\n"
        "  --cache-dir DIR     shared result store (default\n"
        "                      $SMTSWEEP_CACHE or .smtsweep-cache)\n"
        "  --store-url URL     remote store served by smtstore\n"
        "                      (http://host:port; same slot as\n"
        "                      --cache-dir)\n"
        "  --store-token T     bearer token for a token-protected\n"
        "                      store; forwarded to workers through the\n"
        "                      environment / the ssh channel, never\n"
        "                      argv (prefer --store-token-file or\n"
        "                      $SMTSTORE_TOKEN: argv is visible in ps)\n"
        "  --store-token-file P  read the token's first line from P\n"
        "  --marker-ttl S      worker marker lease seconds (default\n"
        "                      60); peers adopt work whose lease has\n"
        "                      expired past the clock-skew slack\n"
        "  --retries K         relaunches per failed shard with\n"
        "                      --no-steal (default 1)\n"
        "  --no-steal          relaunch dead shards instead of letting\n"
        "                      surviving workers adopt their orphans\n"
        "  --steal-wait S      orphan-adoption grace seconds per\n"
        "                      worker (default 10)\n"
        "  --jobs N            pool threads per worker (default:\n"
        "                      cores / shards)\n"
        "  --smtsweep PATH     worker binary (default: smtsweep beside\n"
        "                      this executable; with --hosts, the\n"
        "                      path on the remote hosts)\n"
        "  --hosts LIST        run workers over ssh on these hosts\n"
        "                      (comma-separated, round-robin)\n"
        "  --ssh CMD           ssh program for --hosts (default ssh)\n"
        "  --json PATH         write the coordinator summary (with\n"
        "                      --status: the audit; \"-\" = stdout)\n"
        "  --cycles N          measured cycles per run\n"
        "  --warmup N          warmup cycles per run\n"
        "  --runs N            rotation runs per data point\n"
        "  --serial            workers run their points serially\n"
        "  --trace-out FILE    append JSONL trace spans to FILE. Every\n"
        "                      worker is launched with a --trace-out of\n"
        "                      its own under the coordinator's trace id:\n"
        "                      local workers append to FILE itself,\n"
        "                      --hosts workers write FILE.shardN on\n"
        "                      their host and (with --store-url) flush\n"
        "                      spans to the server's /v1/trace capture.\n"
        "                      Analyze the merged trace with smttrace\n"
        "  --no-progress       no live progress line on stderr\n"
        "  --status            audit the store manifest and exit\n"
        "  --verbose           verbose workers + per-point cache logs\n"
        "  --help, -h          print this help\n");
    return code;
}

/** `smtsweep` in this executable's directory (the normal build tree
 *  layout); "./smtsweep" when /proc/self/exe is unreadable. execv()
 *  does not search PATH, so main() verifies the result is runnable
 *  before any shard burns its retries on exit 127. */
std::string
defaultWorkerPath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string self(buf);
        const std::size_t slash = self.rfind('/');
        if (slash != std::string::npos)
            return self.substr(0, slash + 1) + "smtsweep";
    }
    return "./smtsweep";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smt;

    dist::DistOptions opts;
    opts.ropts = sweep::defaultRunnerOptions();
    if (opts.ropts.cacheDir.empty())
        opts.ropts.cacheDir = ".smtsweep-cache";

    std::string experiment;
    std::string json_path;
    std::string store_token, store_token_file;
    std::string trace_out;
    bool status_mode = false;

    auto next_arg = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "smtsweep-dist: %s needs a value\n",
                         argv[i]);
            std::exit(usage(2));
        }
        return argv[++i];
    };
    auto positive = [&](int &i) -> unsigned {
        const char *flag = argv[i];
        const char *value = next_arg(i);
        const unsigned n =
            static_cast<unsigned>(std::strtoul(value, nullptr, 10));
        if (n < 1) {
            std::fprintf(stderr,
                         "smtsweep-dist: %s needs a positive count, "
                         "got \"%s\"\n",
                         flag, value);
            std::exit(usage(2));
        }
        return n;
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--experiment") == 0)
            experiment = next_arg(i);
        else if (std::strcmp(arg, "--shards") == 0)
            opts.shards = positive(i);
        else if (std::strcmp(arg, "--cache-dir") == 0
                 || std::strcmp(arg, "--store-url") == 0)
            opts.ropts.cacheDir = next_arg(i);
        else if (std::strcmp(arg, "--store-token") == 0)
            store_token = next_arg(i);
        else if (std::strcmp(arg, "--store-token-file") == 0)
            store_token_file = next_arg(i);
        else if (std::strcmp(arg, "--marker-ttl") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            opts.ropts.markerTtlSeconds = std::strtod(value, &end);
            if (end == value || opts.ropts.markerTtlSeconds <= 0.0) {
                std::fprintf(stderr,
                             "smtsweep-dist: --marker-ttl needs "
                             "positive seconds, got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--no-steal") == 0)
            opts.steal = false;
        else if (std::strcmp(arg, "--steal-wait") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            opts.stealWaitSeconds = std::strtod(value, &end);
            if (end == value || opts.stealWaitSeconds < 0.0) {
                std::fprintf(stderr,
                             "smtsweep-dist: --steal-wait needs "
                             "seconds, got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--ssh") == 0)
            opts.sshProgram = next_arg(i);
        else if (std::strcmp(arg, "--retries") == 0) {
            const char *value = next_arg(i);
            char *end = nullptr;
            opts.retries =
                static_cast<unsigned>(std::strtoul(value, &end, 10));
            if (end == value || *end != '\0') {
                std::fprintf(stderr,
                             "smtsweep-dist: --retries needs a count, "
                             "got \"%s\"\n",
                             value);
                return usage(2);
            }
        }
        else if (std::strcmp(arg, "--jobs") == 0)
            opts.jobsPerWorker = positive(i);
        else if (std::strcmp(arg, "--smtsweep") == 0)
            opts.smtsweepPath = next_arg(i);
        else if (std::strcmp(arg, "--hosts") == 0)
            opts.hostList = next_arg(i);
        else if (std::strcmp(arg, "--json") == 0)
            json_path = next_arg(i);
        else if (std::strcmp(arg, "--cycles") == 0)
            opts.ropts.measure.cyclesPerRun =
                std::strtoull(next_arg(i), nullptr, 10);
        else if (std::strcmp(arg, "--warmup") == 0)
            opts.ropts.measure.warmupCycles =
                std::strtoull(next_arg(i), nullptr, 10);
        else if (std::strcmp(arg, "--runs") == 0)
            opts.ropts.measure.runs = positive(i);
        else if (std::strcmp(arg, "--serial") == 0)
            opts.ropts.measure.parallel = false;
        else if (std::strcmp(arg, "--trace-out") == 0)
            trace_out = next_arg(i);
        else if (std::strcmp(arg, "--no-progress") == 0)
            opts.showProgress = false;
        else if (std::strcmp(arg, "--status") == 0)
            status_mode = true;
        else if (std::strcmp(arg, "--verbose") == 0)
            opts.ropts.verbose = true;
        else if (std::strcmp(arg, "--help") == 0
                 || std::strcmp(arg, "-h") == 0)
            return usage(0);
        else {
            std::fprintf(stderr, "smtsweep-dist: unknown option %s\n",
                         arg);
            return usage(2);
        }
    }

    opts.ropts.storeToken =
        sweep::resolveStoreToken(store_token, store_token_file);

    // Must outlive runDistributed: the coordinator emits sweep-level
    // spans through it and hands its id to workers and the store.
    std::unique_ptr<obs::TraceWriter> trace;
    if (!trace_out.empty()) {
        trace = std::make_unique<obs::TraceWriter>(trace_out);
        opts.ropts.trace = trace.get();
    }

    if (status_mode)
        return dist::auditStore(opts.ropts.cacheDir,
                                opts.ropts.storeToken,
                                opts.ropts.verbose, json_path);

    if (experiment.empty()) {
        std::fprintf(stderr, "smtsweep-dist: no experiment named "
                             "(see smtsweep --list)\n");
        return usage(2);
    }
    const sweep::NamedExperiment *e = sweep::findExperiment(experiment);
    if (e == nullptr) {
        std::fprintf(stderr,
                     "smtsweep-dist: unknown experiment \"%s\" (see "
                     "smtsweep --list)\n",
                     experiment.c_str());
        return 2;
    }
    if (opts.smtsweepPath.empty())
        opts.smtsweepPath = defaultWorkerPath();
    // With --hosts the worker path names a binary on the remote
    // machines; only the local case can be vetted up front.
    if (opts.hostList.empty()
        && ::access(opts.smtsweepPath.c_str(), X_OK) != 0) {
        std::fprintf(stderr,
                     "smtsweep-dist: worker binary %s is not runnable; "
                     "pass --smtsweep PATH\n",
                     opts.smtsweepPath.c_str());
        return 2;
    }
    if (!opts.hostList.empty()
        && !sweep::isRemoteStoreLocator(opts.ropts.cacheDir))
        std::fprintf(stderr,
                     "smtsweep-dist: note: --hosts with a directory "
                     "store (%s) requires that path to be a shared "
                     "filesystem on every host; serve it with smtstore "
                     "and pass --store-url otherwise\n",
                     opts.ropts.cacheDir.c_str());

    dist::DistOutcome outcome;
    const int rc = dist::runDistributed(*e, opts, outcome);
    if (rc != 0) {
        std::fprintf(stderr, "smtsweep-dist: sweep failed\n");
        return rc;
    }

    e->report(outcome.merged);
    std::printf("dist %s: %zu points across %u shards, %u merge hits, "
                "%u misses, %.2fs wall\n",
                experiment.c_str(), outcome.merged.points.size(),
                opts.shards, outcome.merged.cacheHits,
                outcome.merged.cacheMisses, outcome.wallSeconds);

    if (!json_path.empty())
        sweep::writeJsonFile(json_path,
                             dist::distArtifact(experiment, outcome));
    return 0;
}
