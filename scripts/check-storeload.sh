#!/usr/bin/env bash
# check-storeload.sh RESULTS.json [MIN_CONNECTIONS] — the store load
# gate CI runs over smtload's output.
#
# Validates the document shape (schema smt-storeload-v1, a host
# fingerprint, at least one measured level) and enforces the
# concurrency bar:
#
#   - every level completed with zero failed requests;
#   - some level ran at >= MIN_CONNECTIONS concurrent connections
#     (default 64 — the CI smoke budget; local full runs record 256);
#   - every level that reached the server's /v1/stats reports a
#     requests delta >= the client's own op count (the server must
#     have seen every op the clients counted).
#
# Absolute throughput is never gated — it varies wildly across CI
# hosts; correctness under concurrency is the invariant.
set -u

current="${1:-}"
min_conns="${2:-${STORELOAD_MIN_CONNECTIONS:-64}}"

if [ -z "$current" ]; then
    echo "usage: check-storeload.sh RESULTS.json [MIN_CONNECTIONS]" >&2
    exit 2
fi
if [ ! -f "$current" ]; then
    echo "check-storeload: results not found: $current" >&2
    exit 2
fi

python3 - "$current" "$min_conns" <<'PY'
import json
import sys

path, min_conns = sys.argv[1], int(sys.argv[2])
doc = json.load(open(path))

if doc.get("schema") != "smt-storeload-v1":
    sys.exit(f"check-storeload: {path}: unexpected schema "
             f"{doc.get('schema')!r} (want smt-storeload-v1)")
if not doc.get("host", {}).get("fingerprint"):
    sys.exit(f"check-storeload: {path}: missing host fingerprint")

levels = doc.get("levels", [])
if not levels:
    sys.exit(f"check-storeload: {path}: no measured levels")

failed = []
top = 0
print(f"{'conns':>6} {'ops':>9} {'ops/s':>9} {'p50us':>8} {'p99us':>9} "
      f"{'errors':>7} {'srv delta':>10}")
for level in levels:
    conns = level["connections"]
    ops = level["ops"]
    errors = level["errors"]
    delta = level.get("server_requests_delta", -1)
    lat = level.get("latency_us", {})
    top = max(top, conns)
    mark = ""
    if errors != 0:
        failed.append(f"{conns} conns: {errors} errors")
        mark = "  << errors"
    if delta >= 0 and delta < ops:
        failed.append(f"{conns} conns: server saw {delta} < {ops} ops")
        mark += "  << ledger short"
    print(f"{conns:>6} {ops:>9} {level['ops_per_sec']:>9.0f} "
          f"{lat.get('p50_us', 0):>8.0f} {lat.get('p99_us', 0):>9.0f} "
          f"{errors:>7} {delta:>10}{mark}")

if top < min_conns:
    failed.append(f"highest level {top} is below the {min_conns}-"
                  f"connection bar")

if failed:
    print("\ncheck-storeload: FAILED")
    for reason in failed:
        print(f"  - {reason}")
    sys.exit(1)
print(f"\ncheck-storeload: OK — zero errors through {top} concurrent "
      f"connections.")
PY
