#!/usr/bin/env bash
# check-docs.sh [BUILD_DIR] — the docs link check CI runs.
#
# Verifies, over README.md and docs/*.md:
#  1. every relative markdown link resolves to a file in the repo;
#  2. every tool the docs name (any `smt...` word) exists in tools/;
#  3. with a BUILD_DIR: every `--flag` the docs cite appears in some
#     tool's --help output — the help text is the canonical flag
#     list, and the docs must not drift from it.
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-}"
fail=0

docs=("$repo/README.md")
for f in "$repo"/docs/*.md; do
    docs+=("$f")
done

# 1. Relative links resolve.
for f in "${docs[@]}"; do
    dir="$(dirname "$f")"
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in ${f#"$repo"/}: ($target)"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//')
done

# 2. Tools named in the docs exist. ("smtsim" is the project, "smt"
#    the library namespace prefix.)
allow_tools="smtsim smt"
for f in "${docs[@]}"; do
    while IFS= read -r name; do
        skip=0
        for a in $allow_tools; do
            [ "$name" = "$a" ] && skip=1
        done
        [ "$skip" = 1 ] && continue
        if [ ! -e "$repo/tools/$name.cc" ]; then
            echo "unknown tool named in ${f#"$repo"/}: $name"
            fail=1
        fi
    done < <(grep -ohE '\bsmt[a-z][a-z-]*' "$f" | sed 's/-$//' | sort -u)
done

# 3. Flags cited in the docs exist in a tool's --help.
#    (--output-on-failure and --build belong to ctest/cmake, cited in
#    build lines.)
allow_flags="--output-on-failure --build"
if [ -n "$build" ]; then
    if [ ! -x "$build/smtsweep" ]; then
        echo "no tools in build dir $build"
        exit 2
    fi
    help_all="$("$build/smtsweep" --help
        "$build/smtsweep-dist" --help
        "$build/smtstore" --help
        "$build/smttrace" --help
        "$build/smtpipe" --help
        "$build/smtload" --help)"
    for f in "${docs[@]}"; do
        while IFS= read -r flag; do
            skip=0
            for a in $allow_flags; do
                [ "$flag" = "$a" ] && skip=1
            done
            [ "$skip" = 1 ] && continue
            if ! printf '%s' "$help_all" | grep -q -- "$flag"; then
                echo "flag cited in ${f#"$repo"/} missing from every" \
                     "tool --help: $flag"
                fail=1
            fi
        done < <(grep -ohE '(^|[^a-zA-Z-])--[a-z][a-z-]+' "$f" \
                 | grep -oE -- '--[a-z][a-z-]+' | sort -u)
    done
fi

if [ "$fail" = 0 ]; then
    echo "docs check: OK (${#docs[@]} files)"
fi
exit "$fail"
