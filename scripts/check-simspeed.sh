#!/usr/bin/env bash
# check-simspeed.sh CURRENT.json [BASELINE.json] — the simspeed
# regression gate CI runs.
#
# Compares per-shape tick throughput (cycles_per_sec) in CURRENT
# against the committed baseline (default:
# bench/BENCH_simspeed.baseline.json). A shape regresses when
#
#   current/baseline < SIMSPEED_MIN_RATIO   (default 0.9, i.e. a
#                                            >10% throughput loss)
#
# Exits 1 if any shape regresses. Skips cleanly (exit 0) when:
#  - the baseline file does not exist (fresh branch, no baseline yet);
#  - the two files were measured on different hosts (the fingerprint
#    field differs) — absolute throughput is not comparable across
#    machines. Set SIMSPEED_IGNORE_HOST=1 to compare anyway.
#
# Shapes present in only one of the two files are reported but never
# fail the gate, so adding or retiring a machine shape does not
# require regenerating the baseline in the same commit.
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
current="${1:-}"
baseline="${2:-$repo/bench/BENCH_simspeed.baseline.json}"
min_ratio="${SIMSPEED_MIN_RATIO:-0.9}"

if [ -z "$current" ]; then
    echo "usage: check-simspeed.sh CURRENT.json [BASELINE.json]" >&2
    exit 2
fi
if [ ! -f "$current" ]; then
    echo "check-simspeed: current results not found: $current" >&2
    exit 2
fi
if [ ! -f "$baseline" ]; then
    echo "check-simspeed: no baseline at ${baseline#"$repo"/}; skipping."
    exit 0
fi

python3 - "$current" "$baseline" "$min_ratio" <<'PY'
import json
import os
import sys

cur_path, base_path, min_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])
cur = json.load(open(cur_path))
base = json.load(open(base_path))

for doc, path in ((cur, cur_path), (base, base_path)):
    if doc.get("schema") != "smt-simspeed-v1":
        sys.exit(f"check-simspeed: {path}: unexpected schema "
                 f"{doc.get('schema')!r} (want smt-simspeed-v1)")

cur_host = cur.get("host", {}).get("fingerprint")
base_host = base.get("host", {}).get("fingerprint")
if cur_host != base_host and not os.environ.get("SIMSPEED_IGNORE_HOST"):
    print(f"check-simspeed: host differs from baseline; skipping.\n"
          f"  current:  {cur_host}\n  baseline: {base_host}")
    sys.exit(0)

cur_shapes = {s["name"]: s for s in cur.get("shapes", [])}
base_shapes = {s["name"]: s for s in base.get("shapes", [])}

failed = []
print(f"{'shape':<20} {'baseline':>12} {'current':>12} {'ratio':>7}")
for name in base_shapes:
    if name not in cur_shapes:
        print(f"{name:<20} {'(not measured this run)':>33}")
        continue
    b = base_shapes[name]["cycles_per_sec"]
    c = cur_shapes[name]["cycles_per_sec"]
    ratio = c / b if b > 0 else float("inf")
    mark = ""
    if ratio < min_ratio:
        failed.append(name)
        mark = f"  << regressed (>{(1 - min_ratio) * 100:.0f}% loss)"
    print(f"{name:<20} {b:>12.0f} {c:>12.0f} {ratio:>7.2f}{mark}")
for name in cur_shapes:
    if name not in base_shapes:
        print(f"{name:<20} {'(new shape, no baseline)':>33}")

if failed:
    print(f"\ncheck-simspeed: FAILED — {len(failed)} shape(s) below "
          f"{min_ratio}x of baseline: {', '.join(failed)}")
    sys.exit(1)
print(f"\ncheck-simspeed: OK — no shape below {min_ratio}x of baseline.")
PY
