/**
 * @file
 * Capacity planner: given a fixed physical-register budget, find the
 * number of hardware contexts that maximises throughput — the analysis
 * of the paper's Figure 7 (200 registers, 1..5 contexts), generalised
 * to any budget.
 *
 * Usage: capacity_planner [total_phys_regs] [max_contexts]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/mix_runner.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    const unsigned total =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 200;
    const unsigned max_contexts =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 5;

    smt::Table table("throughput under a fixed register budget");
    table.setHeader({"contexts", "excess regs", "IPC",
                     "out-of-registers"});

    unsigned best_contexts = 0;
    double best_ipc = 0.0;
    for (unsigned t = 1; t <= max_contexts; ++t) {
        if (total <= 32 * t) {
            std::printf("%u contexts need more than %u registers; "
                        "stopping.\n", t, total);
            break;
        }
        smt::SmtConfig cfg = smt::presets::icount28(t);
        cfg.totalPhysRegisters = total;
        smt::MeasureOptions opts = smt::defaultMeasureOptions();
        const smt::DataPoint point = smt::measure(cfg, opts);
        table.addRow({std::to_string(t), std::to_string(total - 32 * t),
                      smt::fmtDouble(point.ipc(), 2),
                      smt::fmtPercent(
                          point.stats.outOfRegistersFraction())});
        if (point.ipc() > best_ipc) {
            best_ipc = point.ipc();
            best_contexts = t;
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("best: %u context(s) at %.2f IPC with %u total registers "
                "per file\n", best_contexts, best_ipc, total);
    return 0;
}
