/**
 * @file
 * Quickstart: build the paper's improved machine (ICOUNT.2.8), run a
 * 4-thread multiprogrammed mix, and print throughput plus the low-level
 * statistics the simulator gathers.
 *
 * Usage: quickstart [threads] [cycles]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "workload/mix.hh"

int
main(int argc, char **argv)
{
    const unsigned threads =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
    const std::uint64_t cycles =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;

    // The improved architecture of Section 7: ICOUNT.2.8 fetch on the
    // base hardware sizes.
    smt::SmtConfig cfg = smt::presets::icount28(threads);

    // Thread t runs benchmark t of the paper's 8-benchmark rotation.
    smt::Simulator sim(cfg, smt::mixForRun(threads, 0));

    std::printf("machine: %s, %u hardware context(s)\n",
                cfg.fetchSchemeName().c_str(), threads);
    std::printf("running %llu cycles...\n\n",
                static_cast<unsigned long long>(cycles));

    sim.warmup(20000);
    const smt::SimStats &stats = sim.run(cycles);

    std::printf("%s\n", stats.report().c_str());
    std::printf("throughput: %.2f useful instructions per cycle\n",
                stats.ipc());
    return 0;
}
