/**
 * @file
 * Fetch-policy explorer: compare every registered fetch priority
 * policy — the paper's five plus any registry extensions — on a
 * workload mix of your choosing, at one thread count.
 *
 * Usage: fetch_policy_explorer [threads] [benchmark ...]
 *   e.g. fetch_policy_explorer 4 xlisp tomcatv espresso fpppp
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "policy/registry.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"
#include "workload/mix.hh"

int
main(int argc, char **argv)
{
    const unsigned threads =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;

    std::vector<smt::Benchmark> mix;
    for (int a = 2; a < argc; ++a)
        mix.push_back(smt::benchmarkByName(argv[a]));
    if (mix.empty())
        mix = smt::mixForRun(threads, 0);
    const std::size_t given = mix.size();
    while (mix.size() < threads)
        mix.push_back(mix[mix.size() % given]);
    mix.resize(threads);

    std::printf("mix:");
    for (smt::Benchmark b : mix)
        std::printf(" %s", smt::benchmarkName(b));
    std::printf("\n\n");

    smt::Table table("fetch policies on a custom mix (2.8 partitioning)");
    table.setHeader({"policy", "IPC", "int IQ-full", "fp IQ-full",
                     "wrong-path fetched"});
    const auto &registry = smt::policy::PolicyRegistry::instance();
    for (const std::string &name : registry.fetchPolicyNames()) {
        smt::SmtConfig cfg = smt::presets::baseSmt(threads);
        cfg.fetchPolicyName = name;
        smt::presets::setFetchPartition(cfg, 2, 8);
        smt::Simulator sim(cfg, mix);
        sim.warmup(5000);
        const smt::SimStats &stats = sim.run(40000);
        table.addRow({name, smt::fmtDouble(stats.ipc(), 2),
                      smt::fmtPercent(stats.intIQFullFraction()),
                      smt::fmtPercent(stats.fpIQFullFraction()),
                      smt::fmtPercent(stats.wrongPathFetchedFraction())});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
