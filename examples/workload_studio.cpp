/**
 * @file
 * Workload studio: inspect a synthetic benchmark — static program shape
 * and the single-thread behaviour it induces on the base machine. Use
 * this when tuning a BenchmarkProfile against characterisation targets
 * (miss rates, branch mispredict rate, IPC).
 *
 * Usage: workload_studio [benchmark]
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "stats/table.hh"
#include "workload/code_image.hh"

int
main(int argc, char **argv)
{
    const smt::Benchmark bench =
        argc > 1 ? smt::benchmarkByName(argv[1]) : smt::Benchmark::Xlisp;
    const smt::BenchmarkProfile &prof = smt::benchmarkProfile(bench);

    auto image = smt::generateProgram(prof, /*seed=*/1,
                                      smt::AddressLayout::codeBase(0),
                                      smt::AddressLayout::dataBase(0),
                                      smt::AddressLayout::stackBase(0));

    // Static shape.
    unsigned loads = 0, stores = 0, branches = 0, calls = 0, fp = 0;
    for (std::size_t i = 0; i < image->numInsts(); ++i) {
        const smt::StaticInst *si =
            image->at(image->codeBase() + i * smt::kInstBytes);
        if (si->isLoad()) ++loads;
        if (si->isStore()) ++stores;
        if (si->isCondBranch()) ++branches;
        if (si->op == smt::OpClass::Call) ++calls;
        if (smt::isFloatOp(si->op)) ++fp;
    }
    const double n = static_cast<double>(image->numInsts());
    std::printf("benchmark %s: %zu static instructions (%.1f KB code)\n",
                prof.name.c_str(), image->numInsts(),
                image->codeBytes() / 1024.0);
    std::printf("  static mix: %.1f%% loads, %.1f%% stores, %.1f%% cond "
                "branches, %.1f%% calls, %.1f%% FP\n",
                100 * loads / n, 100 * stores / n, 100 * branches / n,
                100 * calls / n, 100 * fp / n);

    // Single-thread dynamic behaviour on the base machine.
    smt::SmtConfig cfg = smt::presets::baseSmt(1);
    smt::Simulator sim(cfg, {bench});
    sim.warmup(10000);
    const smt::SimStats &stats = sim.run(60000);
    std::printf("\nsingle-thread behaviour on the base machine:\n%s\n",
                stats.report().c_str());
    return 0;
}
